"""Tests for the sliding-window AVG estimator (paper Section 4.1.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_series
from repro.core.query import CorrelatedQuery
from repro.core.sliding_avg import SlidingAvgEstimator
from repro.exceptions import ConfigurationError, StreamError
from repro.streams.model import Record
from tests.conftest import make_records

AVG_Q = CorrelatedQuery("count", "avg", window=50)


class TestValidation:
    def test_requires_avg_query(self):
        with pytest.raises(ConfigurationError):
            SlidingAvgEstimator(CorrelatedQuery("count", "min", epsilon=1.0, window=10))

    def test_requires_sliding_scope(self):
        with pytest.raises(ConfigurationError):
            SlidingAvgEstimator(CorrelatedQuery("count", "avg"))

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            SlidingAvgEstimator(AVG_Q, num_buckets=3)
        with pytest.raises(ConfigurationError):
            SlidingAvgEstimator(AVG_Q, strategy="other")
        with pytest.raises(ConfigurationError):
            SlidingAvgEstimator(AVG_Q, policy="other")
        with pytest.raises(ConfigurationError):
            SlidingAvgEstimator(AVG_Q, k_std=-1.0)
        with pytest.raises(ConfigurationError):
            SlidingAvgEstimator(AVG_Q, num_buckets=100)
        with pytest.raises(ConfigurationError):
            SlidingAvgEstimator(AVG_Q, rebuild_period=-3)

    def test_focus_before_build_raises(self):
        est = SlidingAvgEstimator(AVG_Q)
        with pytest.raises(StreamError):
            est.focus_interval


class TestBehaviour:
    def test_exact_during_warmup(self):
        est = SlidingAvgEstimator(AVG_Q, num_buckets=5)
        records = make_records([2.0, 8.0, 4.0, 6.0])
        exact = exact_series(records, AVG_Q)
        assert [est.update(r) for r in records] == exact

    def test_window_mean_is_exact(self, rng):
        xs = rng.uniform(0.0, 100.0, size=300)
        est = SlidingAvgEstimator(AVG_Q, num_buckets=6)
        for i, r in enumerate(make_records(xs)):
            est.update(r)
            live = xs[max(0, i - 49) : i + 1]
            assert est.mean == pytest.approx(live.mean(), rel=1e-9)

    def test_regime_change_rebuild(self):
        # A dominant value enters and leaves the window: the estimator must
        # recover rather than keep stale tail classifications.
        q = CorrelatedQuery("count", "avg", window=30)
        est = SlidingAvgEstimator(q, num_buckets=6, num_intervals=6)
        values = [10.0] * 40 + [100000.0] + [10.0] * 80
        records = make_records(values)
        exact = exact_series(records, q)
        outputs = [est.update(r) for r in records]
        # Long after the spike expired, the answer must match again.
        assert outputs[-1] == pytest.approx(exact[-1], abs=2.0)

    def test_mean_in_or_near_focus(self, rng):
        xs = np.abs(rng.normal(10.0, 2.0, size=400)) + 0.1
        est = SlidingAvgEstimator(AVG_Q, num_buckets=8)
        for r in make_records(xs):
            est.update(r)
        lo, hi = est.focus_interval
        assert lo - 1e-9 <= est.mean <= hi + 1e-9


class TestAccuracy:
    @pytest.mark.parametrize("strategy", ["wholesale", "piecemeal"])
    @pytest.mark.parametrize("policy", ["uniform", "quantile"])
    def test_tracks_exact_on_lognormal(self, rng, strategy, policy):
        xs = rng.lognormal(mean=2.0, sigma=0.8, size=2000)
        records = make_records(xs)
        q = CorrelatedQuery("count", "avg", window=500)
        est = SlidingAvgEstimator(q, num_buckets=10, strategy=strategy, policy=policy)
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, q))
        rmse = float(np.sqrt(np.mean((outputs - exact) ** 2)))
        assert rmse < 0.15 * exact.mean()

    def test_sum_dependent(self, rng):
        xs = rng.uniform(1.0, 100.0, size=800)
        ys = rng.uniform(0.0, 5.0, size=800)
        records = make_records(xs, ys)
        q = CorrelatedQuery("sum", "avg", window=200)
        est = SlidingAvgEstimator(q, num_buckets=8)
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, q))
        rmse = float(np.sqrt(np.mean((outputs - exact) ** 2)))
        assert rmse < 0.2 * exact.mean()

    def test_estimate_bounded_by_window(self, rng):
        xs = rng.exponential(scale=3.0, size=500) + 0.1
        q = CorrelatedQuery("count", "avg", window=40)
        est = SlidingAvgEstimator(q, num_buckets=5)
        for r in make_records(xs):
            out = est.update(r)
            assert 0.0 <= out <= 40 + 1e-6

    @given(xs=st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_never_crashes(self, xs):
        q = CorrelatedQuery("count", "avg", window=12)
        est = SlidingAvgEstimator(q, num_buckets=5, num_intervals=4)
        for r in make_records(xs):
            out = est.update(r)
            assert np.isfinite(out)
