"""Tests for interval bound reporting (the paper's Section 3.1 remark)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_series
from repro.core.landmark_avg import LandmarkAvgEstimator
from repro.histograms.mass import band_bounds
from repro.core.query import CorrelatedQuery
from repro.core.sliding_avg import SlidingAvgEstimator
from repro.exceptions import ConfigurationError
from repro.histograms.bucket import BucketArray, Mass
from tests.conftest import make_records

AVG_Q = CorrelatedQuery("count", "avg")
SW_Q = CorrelatedQuery("count", "avg", window=50)


class TestBandBounds:
    def test_fully_covered_bucket_in_both_bounds(self):
        inner = BucketArray([0.0, 1.0, 2.0], counts=[3.0, 5.0], weights=[3.0, 5.0])
        lower, upper = band_bounds(
            inner, Mass(0, 0), Mass(0, 0), 0.0, 2.0, 0.0, 2.0
        )
        assert lower.count == 8.0 and upper.count == 8.0

    def test_straddling_bucket_only_in_upper(self):
        inner = BucketArray([0.0, 1.0, 2.0], counts=[3.0, 5.0], weights=[3.0, 5.0])
        lower, upper = band_bounds(
            inner, Mass(0, 0), Mass(0, 0), 0.0, 2.0, 0.5, 2.0
        )
        assert lower.count == 5.0  # only the fully-inside bucket
        assert upper.count == 8.0  # plus the straddler

    def test_partially_covered_tail_only_in_upper(self):
        inner = BucketArray([10.0, 20.0], counts=[0.0], weights=[0.0])
        left = Mass(6.0, 6.0)
        lower, upper = band_bounds(inner, left, Mass(0, 0), 0.0, 40.0, 5.0, 20.0)
        assert lower.count == 0.0
        assert upper.count == 6.0

    def test_fully_covered_tail_in_both(self):
        inner = BucketArray([10.0, 20.0], counts=[0.0], weights=[0.0])
        right = Mass(4.0, 4.0)
        lower, upper = band_bounds(inner, Mass(0, 0), right, 0.0, 40.0, 15.0, 50.0)
        assert lower.count == 4.0 and upper.count == 4.0

    def test_bounds_bracket_interpolation(self):
        from repro.histograms.mass import band_mass

        inner = BucketArray([0.0, 1.0, 2.0, 3.0], counts=[2.0, 4.0, 6.0], weights=[1.0] * 3)
        args = (inner, Mass(3, 3), Mass(5, 5), -2.0, 5.0, 0.7, 2.4)
        lower, upper = band_bounds(*args)
        mid = band_mass(*args)
        assert lower.count <= mid.count <= upper.count


class TestEstimatorBounds:
    def test_bounds_bracket_estimate_landmark(self, rng):
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=10)
        for r in make_records(rng.lognormal(2.0, 1.0, size=1500)):
            est.update(r)
            lower, upper = est.estimate_bounds()
            assert lower - 1e-9 <= est.estimate() <= upper + 1e-9

    def test_bounds_bracket_exact_landmark(self, rng):
        # The bounds bracket the *summary's* mass exactly; they contain the
        # exact answer whenever the summary's own content drift (tail
        # exchanges under the uniformity assumption) is smaller than the
        # straddling-bucket slack — most steps, not all.
        xs = rng.lognormal(2.0, 1.0, size=1500)
        records = make_records(xs)
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=10)
        exact = exact_series(records, AVG_Q)
        hits = 0
        for r, truth in zip(records, exact):
            est.update(r)
            lower, upper = est.estimate_bounds()
            hits += lower - 1e-6 <= truth <= upper + 1e-6
        assert hits / len(records) > 0.8

    def test_bounds_bracket_estimate_sliding(self, rng):
        est = SlidingAvgEstimator(SW_Q, num_buckets=8)
        for r in make_records(rng.uniform(1.0, 100.0, size=600)):
            est.update(r)
            lower, upper = est.estimate_bounds()
            assert lower - 1e-9 <= est.estimate() <= upper + 1e-9

    def test_warmup_bounds_are_tight(self):
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=10)
        est.update(make_records([5.0])[0])
        lower, upper = est.estimate_bounds()
        assert lower == upper == est.estimate()

    def test_avg_dependent_rejected(self):
        est = LandmarkAvgEstimator(CorrelatedQuery("avg", "avg"), num_buckets=10)
        est.update(make_records([5.0])[0])
        with pytest.raises(ConfigurationError):
            est.estimate_bounds()
        sliding = SlidingAvgEstimator(
            CorrelatedQuery("avg", "avg", window=50), num_buckets=8
        )
        sliding.update(make_records([5.0])[0])
        with pytest.raises(ConfigurationError):
            sliding.estimate_bounds()

    @given(xs=st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_bounds_property(self, xs):
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=5)
        for r in make_records(xs):
            est.update(r)
            lower, upper = est.estimate_bounds()
            assert 0.0 <= lower <= upper + 1e-9
            assert np.isfinite(upper)
