"""Tests for the exact-answer oracle — validated against brute force."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import ExactOracle, exact_series
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from tests.conftest import brute_force_series, make_records


class TestExactSeries:
    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            exact_series([], CorrelatedQuery("count", "avg"))

    def test_landmark_min_count_small_example(self):
        records = make_records([10.0, 5.0, 6.0, 20.0, 4.0])
        q = CorrelatedQuery("count", "min", epsilon=0.5)
        # thresholds: 15, 7.5, 7.5, 7.5, 6 -> qualifying counts 1,1,2,2,3
        assert exact_series(records, q) == [1.0, 1.0, 2.0, 2.0, 3.0]

    def test_landmark_avg_count_small_example(self):
        records = make_records([1.0, 3.0, 5.0])
        q = CorrelatedQuery("count", "avg")
        # means: 1, 2, 3 -> counts above: 0, 1, 1
        assert exact_series(records, q) == [0.0, 1.0, 1.0]

    def test_sum_dependent_uses_y(self):
        records = make_records([1.0, 3.0], ys=[10.0, 20.0])
        q = CorrelatedQuery("sum", "avg")
        # mean after 2: 2.0, only x=3 qualifies -> sum y = 20
        assert exact_series(records, q)[-1] == 20.0

    def test_sliding_window_forgets(self):
        records = make_records([1.0, 100.0, 100.0, 100.0])
        q = CorrelatedQuery("count", "min", epsilon=0.1, window=2)
        series = exact_series(records, q)
        # Window at step 4 is {100, 100}: min=100, threshold=110 -> count 2.
        assert series[-1] == 2.0

    @given(
        xs=st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=50),
        independent=st.sampled_from(["min", "max", "avg"]),
        dependent=st.sampled_from(["count", "sum"]),
        window=st.sampled_from([None, 3, 7]),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, xs, independent, dependent, window):
        ys = [x * 0.5 + 1.0 for x in xs]
        records = make_records(xs, ys)
        q = CorrelatedQuery(dependent, independent, epsilon=0.5, window=window)
        fast = exact_series(records, q)
        slow = brute_force_series(records, q)
        assert fast == pytest.approx(slow, rel=1e-9, abs=1e-6)


class TestExactOracle:
    def test_estimate_before_updates(self):
        oracle = ExactOracle(CorrelatedQuery("count", "avg"), [1.0])
        assert oracle.estimate() == 0.0

    def test_query_accessor(self):
        q = CorrelatedQuery("count", "avg")
        assert ExactOracle(q, [1.0]).query is q

    def test_incremental_equals_batch(self, rng):
        xs = rng.uniform(1, 100, size=200)
        records = make_records(xs)
        q = CorrelatedQuery("count", "max", epsilon=3.0, window=20)
        oracle = ExactOracle(q, xs)
        stepwise = [oracle.update(r) for r in records]
        assert stepwise == exact_series(records, q)
