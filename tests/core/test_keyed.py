"""Tests for the per-key estimator bank."""

from __future__ import annotations

import pytest

from repro.core.exact import exact_series
from repro.core.keyed import ONLINE_METHODS, KeyedEstimatorBank
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.streams.model import Record
from tests.conftest import make_records

QUERY = CorrelatedQuery("count", "min", epsilon=9.0)


class TestValidation:
    def test_offline_methods_rejected(self):
        for method in ("equidepth", "exact"):
            with pytest.raises(ConfigurationError):
                KeyedEstimatorBank(QUERY, method=method)

    def test_equiwidth_needs_domain(self):
        with pytest.raises(ConfigurationError):
            KeyedEstimatorBank(QUERY, method="equiwidth")
        bank = KeyedEstimatorBank(QUERY, method="equiwidth", domain=(0.0, 100.0))
        bank.update("a", Record(5.0))
        assert "a" in bank

    def test_max_keys_positive(self):
        with pytest.raises(ConfigurationError):
            KeyedEstimatorBank(QUERY, max_keys=0)

    def test_online_methods_all_buildable(self):
        for method in ONLINE_METHODS:
            query = QUERY if "running" not in method else CorrelatedQuery("count", "avg")
            bank = KeyedEstimatorBank(query, method=method)
            bank.update("k", Record(5.0))


class TestRouting:
    def test_keys_are_independent(self, rng):
        bank = KeyedEstimatorBank(QUERY)
        a_records = make_records(rng.uniform(1.0, 10.0, size=200))
        b_records = make_records(rng.uniform(100.0, 1000.0, size=200))
        for ra, rb in zip(a_records, b_records):
            bank.update("a", ra)
            bank.update("b", rb)
        exact_a = exact_series(a_records, QUERY)[-1]
        exact_b = exact_series(b_records, QUERY)[-1]
        assert bank.estimate("a") == pytest.approx(exact_a, rel=0.1)
        assert bank.estimate("b") == pytest.approx(exact_b, rel=0.1)

    def test_lazy_creation_and_len(self):
        bank = KeyedEstimatorBank(QUERY)
        assert len(bank) == 0
        bank.update("x", Record(1.0))
        bank.update("y", Record(2.0))
        bank.update("x", Record(3.0))
        assert len(bank) == 2
        assert list(bank.keys()) == ["x", "y"]

    def test_unknown_key_estimate_raises(self):
        bank = KeyedEstimatorBank(QUERY)
        with pytest.raises(StreamError):
            bank.estimate("nope")

    def test_estimates_snapshot(self):
        bank = KeyedEstimatorBank(QUERY)
        bank.update("x", Record(1.0))
        bank.update("y", Record(2.0))
        snapshot = bank.estimates()
        assert set(snapshot) == {"x", "y"}
        assert all(v >= 0.0 for v in snapshot.values())


class TestCapacityManagement:
    def test_max_keys_enforced(self):
        bank = KeyedEstimatorBank(QUERY, max_keys=2)
        bank.update("a", Record(1.0))
        bank.update("b", Record(1.0))
        with pytest.raises(StreamError):
            bank.update("c", Record(1.0))
        bank.update("a", Record(2.0))  # existing keys keep working

    def test_evict_frees_capacity(self):
        bank = KeyedEstimatorBank(QUERY, max_keys=1)
        bank.update("a", Record(1.0))
        assert bank.evict("a")
        assert not bank.evict("a")  # already gone
        bank.update("b", Record(1.0))
        assert "b" in bank and "a" not in bank


class TestTop:
    def test_top_ranks_by_estimate(self, rng):
        query = CorrelatedQuery("count", "avg")
        bank = KeyedEstimatorBank(query, method="heuristic-running")
        # Key "hot" gets many above-average values, "cold" few.
        for i in range(300):
            bank.update("hot", Record(float(i % 7 + 1)))
        for i in range(30):
            bank.update("cold", Record(float(i % 7 + 1)))
        ranked = bank.top(2)
        assert ranked[0][0] == "hot"
        assert ranked[0][1] >= ranked[1][1]

    def test_top_n_validation(self):
        bank = KeyedEstimatorBank(QUERY)
        with pytest.raises(ConfigurationError):
            bank.top(0)
