"""Tests for the per-key estimator bank."""

from __future__ import annotations

import math

import pytest

from repro.core.exact import exact_series
from repro.core.keyed import (
    ONLINE_METHODS,
    KeyedEstimatorBank,
    escape_key_name,
    key_gauge_names,
    rank_estimates,
)
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.obs.sink import RecordingSink
from repro.streams.model import Record
from tests.conftest import make_records

QUERY = CorrelatedQuery("count", "min", epsilon=9.0)

NAN = float("nan")


class _NanEstimator:
    """Stand-in whose estimate is NaN (focused estimators reject non-finite
    records at ingestion, so a NaN answer must be injected directly — e.g.
    an extrema estimator whose focus region emptied)."""

    def estimate(self) -> float:
        return NAN

    def obs_state(self) -> dict[str, float]:
        return {"buckets": 1.0}


class TestValidation:
    def test_offline_methods_rejected(self):
        for method in ("equidepth", "exact"):
            with pytest.raises(ConfigurationError):
                KeyedEstimatorBank(QUERY, method=method)

    def test_equiwidth_needs_domain(self):
        with pytest.raises(ConfigurationError):
            KeyedEstimatorBank(QUERY, method="equiwidth")
        bank = KeyedEstimatorBank(QUERY, method="equiwidth", domain=(0.0, 100.0))
        bank.update("a", Record(5.0))
        assert "a" in bank

    def test_max_keys_positive(self):
        with pytest.raises(ConfigurationError):
            KeyedEstimatorBank(QUERY, max_keys=0)

    def test_online_methods_all_buildable(self):
        for method in ONLINE_METHODS:
            query = QUERY if "running" not in method else CorrelatedQuery("count", "avg")
            bank = KeyedEstimatorBank(query, method=method)
            bank.update("k", Record(5.0))


class TestRouting:
    def test_keys_are_independent(self, rng):
        bank = KeyedEstimatorBank(QUERY)
        a_records = make_records(rng.uniform(1.0, 10.0, size=200))
        b_records = make_records(rng.uniform(100.0, 1000.0, size=200))
        for ra, rb in zip(a_records, b_records):
            bank.update("a", ra)
            bank.update("b", rb)
        exact_a = exact_series(a_records, QUERY)[-1]
        exact_b = exact_series(b_records, QUERY)[-1]
        assert bank.estimate("a") == pytest.approx(exact_a, rel=0.1)
        assert bank.estimate("b") == pytest.approx(exact_b, rel=0.1)

    def test_lazy_creation_and_len(self):
        bank = KeyedEstimatorBank(QUERY)
        assert len(bank) == 0
        bank.update("x", Record(1.0))
        bank.update("y", Record(2.0))
        bank.update("x", Record(3.0))
        assert len(bank) == 2
        assert list(bank.keys()) == ["x", "y"]

    def test_unknown_key_estimate_raises(self):
        bank = KeyedEstimatorBank(QUERY)
        with pytest.raises(StreamError):
            bank.estimate("nope")

    def test_estimates_snapshot(self):
        bank = KeyedEstimatorBank(QUERY)
        bank.update("x", Record(1.0))
        bank.update("y", Record(2.0))
        snapshot = bank.estimates()
        assert set(snapshot) == {"x", "y"}
        assert all(v >= 0.0 for v in snapshot.values())


class TestCapacityManagement:
    def test_max_keys_enforced(self):
        bank = KeyedEstimatorBank(QUERY, max_keys=2)
        bank.update("a", Record(1.0))
        bank.update("b", Record(1.0))
        with pytest.raises(StreamError):
            bank.update("c", Record(1.0))
        bank.update("a", Record(2.0))  # existing keys keep working

    def test_evict_frees_capacity(self):
        bank = KeyedEstimatorBank(QUERY, max_keys=1)
        bank.update("a", Record(1.0))
        assert bank.evict("a")
        assert not bank.evict("a")  # already gone
        bank.update("b", Record(1.0))
        assert "b" in bank and "a" not in bank


class TestTop:
    def test_top_ranks_by_estimate(self, rng):
        query = CorrelatedQuery("count", "avg")
        bank = KeyedEstimatorBank(query, method="heuristic-running")
        # Key "hot" gets many above-average values, "cold" few.
        for i in range(300):
            bank.update("hot", Record(float(i % 7 + 1)))
        for i in range(30):
            bank.update("cold", Record(float(i % 7 + 1)))
        ranked = bank.top(2)
        assert ranked[0][0] == "hot"
        assert ranked[0][1] >= ranked[1][1]

    def test_top_n_validation(self):
        bank = KeyedEstimatorBank(QUERY)
        with pytest.raises(ConfigurationError):
            bank.top(0)

    def test_top_beyond_live_keys_returns_them_all(self):
        bank = KeyedEstimatorBank(QUERY)
        bank.update("a", Record(1.0))
        bank.update("b", Record(2.0))
        ranked = bank.top(10)
        assert len(ranked) == 2
        assert {key for key, _ in ranked} == {"a", "b"}

    def test_nan_estimates_rank_last_deterministically(self):
        # Regression: sorted(..., reverse=True) over raw floats lets a NaN
        # land anywhere (all comparisons are False), poisoning the whole
        # ranking.  NaNs must sort last, in first-seen order, every time.
        bank = KeyedEstimatorBank(QUERY)
        for key, x in (("a", 5.0), ("b", 50.0), ("c", 2.0)):
            for _ in range(5):
                bank.update(key, Record(x))
        bank._estimators["poison"] = _NanEstimator()
        bank._updates["poison"] = 0
        bank._estimators["poison2"] = _NanEstimator()
        bank._updates["poison2"] = 0
        for _ in range(5):
            ranked = bank.top(10)
            assert [key for key, _ in ranked[-2:]] == ["poison", "poison2"]
            finite = [value for _, value in ranked[:-2]]
            assert finite == sorted(finite, reverse=True)
            assert all(math.isnan(value) for _, value in ranked[-2:])


class TestRankEstimates:
    def test_nans_last_in_first_seen_order(self):
        items = [("a", NAN), ("b", 3.0), ("c", NAN), ("d", 7.0)]
        assert [key for key, _ in rank_estimates(items)] == ["d", "b", "a", "c"]

    def test_ties_keep_first_seen_order(self):
        items = [("x", 1.0), ("y", 1.0), ("z", 2.0)]
        assert [key for key, _ in rank_estimates(items)] == ["z", "x", "y"]

    def test_n_truncates(self):
        items = [("a", 1.0), ("b", 2.0), ("c", 3.0)]
        assert rank_estimates(items, 2) == [("c", 3.0), ("b", 2.0)]


class TestGaugeNaming:
    def test_dots_and_backslashes_escaped(self):
        assert escape_key_name("a.b") == "a\\.b"
        assert escape_key_name("a\\.b") == "a\\\\\\.b"
        # Distinct keys never alias after escaping.
        assert escape_key_name("a.b") != escape_key_name("a\\b")

    def test_colliding_renderings_disambiguated(self):
        names = key_gauge_names([1, "1", 2])
        assert names[1] == "1"
        assert names["1"] == "1#2"
        assert names[2] == "2"
        assert len(set(names.values())) == 3


class TestEvictEvent:
    def test_evict_emits_event_with_lifetime_updates(self):
        sink = RecordingSink()
        bank = KeyedEstimatorBank(QUERY, sink=sink)
        for _ in range(7):
            bank.update("gone", Record(1.0))
        assert bank.evict("gone")
        events = sink.events_named("keyed.evict")
        assert len(events) == 1
        assert events[0].fields == {"key": "gone", "updates": 7.0}

    def test_unknown_evict_emits_nothing(self):
        sink = RecordingSink()
        bank = KeyedEstimatorBank(QUERY, sink=sink)
        assert not bank.evict("never")
        assert sink.count("keyed.evict") == 0.0


class TestObsState:
    def test_default_cardinality_is_key_count_independent(self):
        # Regression: obs_state() used to mint gauges per live key, so a
        # scrape's size scaled with the key population.
        small = KeyedEstimatorBank(QUERY)
        big = KeyedEstimatorBank(QUERY)
        small.update("k0", Record(1.0))
        for i in range(60):
            big.update(f"k{i}", Record(float(i + 1)))
        assert len(big.obs_state()) == len(small.obs_state())
        assert not any(name.startswith("key.") for name in big.obs_state())

    def test_aggregates_report_totals(self):
        bank = KeyedEstimatorBank(QUERY)
        for i in range(10):
            bank.update(f"k{i % 3}", Record(float(i + 1)))
        state = bank.obs_state()
        assert state["keys"] == 3.0
        assert state["updates"] == 10.0
        assert state["memory_bytes"] > 0.0
        assert any(name.startswith("total.") for name in state)

    def test_key_detail_opt_in_capped_and_escaped(self):
        bank = KeyedEstimatorBank(QUERY, obs_key_detail=2)
        for key in ("dotted.key", "plain", "third"):
            for _ in range(3):
                bank.update(key, Record(5.0))
        state = bank.obs_state()
        detailed = {name for name in state if name.startswith("key.")}
        prefixes = {name.rsplit(".", 1)[0] for name in detailed}
        assert len(prefixes) == 2  # capped at top-K, not all live keys
        assert any("dotted\\.key" in name for name in detailed) or not any(
            "dotted" in name for name in detailed
        )

    def test_colliding_keys_get_distinct_gauges(self):
        bank = KeyedEstimatorBank(QUERY, obs_key_detail=5)
        bank.update(1, Record(5.0))
        bank.update("1", Record(50.0))
        state = bank.obs_state()
        estimates = [name for name in state if name.endswith(".estimate")]
        assert len(estimates) == 2  # "1" and "1#2", never one overwriting

