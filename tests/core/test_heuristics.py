"""Tests for the memoryless heuristics and their bounding guarantees."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_series
from repro.core.heuristics import AverageHeuristic, ExtremaHeuristic
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from tests.conftest import make_records


class TestExtremaHeuristic:
    def test_requires_extrema_query(self):
        with pytest.raises(ConfigurationError):
            ExtremaHeuristic(CorrelatedQuery("count", "avg"))

    def test_rejects_sliding(self):
        with pytest.raises(ConfigurationError):
            ExtremaHeuristic(CorrelatedQuery("count", "min", epsilon=1.0, window=10))

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            ExtremaHeuristic(CorrelatedQuery("count", "min", epsilon=1.0), variant="maybe")

    def test_reset_zeroes_on_new_minimum(self):
        q = CorrelatedQuery("count", "min", epsilon=1.0)
        h = ExtremaHeuristic(q, variant="reset")
        outputs = [h.update(r) for r in make_records([10.0, 12.0, 5.0])]
        # 5 resets the counter; 5 itself qualifies.
        assert outputs == [1.0, 2.0, 1.0]

    def test_continue_keeps_counting(self):
        q = CorrelatedQuery("count", "min", epsilon=1.0)
        h = ExtremaHeuristic(q, variant="continue")
        outputs = [h.update(r) for r in make_records([10.0, 12.0, 5.0])]
        assert outputs == [1.0, 2.0, 3.0]

    def test_max_mode(self):
        q = CorrelatedQuery("count", "max", epsilon=1.0)
        h = ExtremaHeuristic(q, variant="reset")
        # thresholds: max/2. Values 4, 10 (reset), 6 (qualifies: 6 >= 5).
        outputs = [h.update(r) for r in make_records([4.0, 10.0, 6.0])]
        assert outputs == [1.0, 1.0, 2.0]

    @given(xs=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_variants_bracket_exact_count(self, xs):
        q = CorrelatedQuery("count", "min", epsilon=0.5)
        records = make_records(xs)
        exact = exact_series(records, q)
        lower = ExtremaHeuristic(q, variant="reset")
        upper = ExtremaHeuristic(q, variant="continue")
        lower_out = [lower.update(r) for r in records]
        upper_out = [upper.update(r) for r in records]
        for lo, ex, hi in zip(lower_out, exact, upper_out):
            assert lo <= ex + 1e-9
            assert hi >= ex - 1e-9


class TestAverageHeuristic:
    def test_requires_avg_query(self):
        with pytest.raises(ConfigurationError):
            AverageHeuristic(CorrelatedQuery("count", "min", epsilon=1.0))

    def test_rejects_sliding(self):
        with pytest.raises(ConfigurationError):
            AverageHeuristic(CorrelatedQuery("count", "avg", window=5))

    def test_counts_arrivals_above_running_mean(self):
        q = CorrelatedQuery("count", "avg")
        h = AverageHeuristic(q)
        # means: 2, 3, 4 at arrival; qualifying arrivals: none, 4>2.5? means
        # computed after push: 2 -> 2>2 no; (2+4)/2=3 -> 4>3 yes; (2+4+6)/3=4 -> 6>4 yes.
        outputs = [h.update(r) for r in make_records([2.0, 4.0, 6.0])]
        assert outputs == [0.0, 1.0, 2.0]

    def test_sum_dependent(self):
        q = CorrelatedQuery("sum", "avg")
        h = AverageHeuristic(q)
        records = make_records([2.0, 4.0], ys=[5.0, 7.0])
        assert [h.update(r) for r in records] == [0.0, 7.0]

    def test_accurate_when_mean_stable(self, rng):
        xs = rng.normal(loc=50.0, scale=5.0, size=2000)
        records = make_records(xs)
        q = CorrelatedQuery("count", "avg")
        h = AverageHeuristic(q)
        outputs = [h.update(r) for r in records]
        exact = exact_series(records, q)
        # Converged mean: the heuristic's relative error is small.
        assert abs(outputs[-1] - exact[-1]) / exact[-1] < 0.05
