"""Tests for the sliding-window extrema estimator (paper Section 4.1.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_series
from repro.core.query import CorrelatedQuery
from repro.core.sliding_extrema import SlidingExtremaEstimator
from repro.exceptions import ConfigurationError, StreamError
from repro.streams.model import Record
from tests.conftest import make_records

MIN_Q = CorrelatedQuery("count", "min", epsilon=1.0, window=50)
MAX_Q = CorrelatedQuery("count", "max", epsilon=1.0, window=50)


class TestValidation:
    def test_requires_extrema_query(self):
        with pytest.raises(ConfigurationError):
            SlidingExtremaEstimator(CorrelatedQuery("count", "avg", window=10))

    def test_requires_sliding_scope(self):
        with pytest.raises(ConfigurationError):
            SlidingExtremaEstimator(CorrelatedQuery("count", "min", epsilon=1.0))

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            SlidingExtremaEstimator(MIN_Q, num_buckets=2)
        with pytest.raises(ConfigurationError):
            SlidingExtremaEstimator(MIN_Q, strategy="other")
        with pytest.raises(ConfigurationError):
            SlidingExtremaEstimator(MIN_Q, policy="other")
        with pytest.raises(ConfigurationError):
            SlidingExtremaEstimator(MIN_Q, num_buckets=100)  # > window
        with pytest.raises(ConfigurationError):
            SlidingExtremaEstimator(MIN_Q, num_intervals=100)  # > window
        with pytest.raises(ConfigurationError):
            SlidingExtremaEstimator(MIN_Q, rebuild_period=-1)

    def test_focus_interval_before_build_raises(self):
        est = SlidingExtremaEstimator(MIN_Q)
        with pytest.raises(StreamError):
            est.focus_interval


class TestBehaviour:
    def test_exact_during_warmup(self):
        est = SlidingExtremaEstimator(MIN_Q, num_buckets=10)
        records = make_records([10.0, 12.0, 5.0, 30.0])
        exact = exact_series(records, MIN_Q)
        assert [est.update(r) for r in records] == exact

    def test_expired_minimum_recovers(self):
        # Deep minimum expires; the estimate must track the window's new
        # regime instead of staying anchored to the old minimum.
        q = CorrelatedQuery("count", "min", epsilon=0.5, window=20)
        est = SlidingExtremaEstimator(q, num_buckets=5, num_intervals=4)
        records = make_records([1.0] + [100.0] * 60)
        exact = exact_series(records, q)
        outputs = [est.update(r) for r in records]
        # After the 1.0 fully rotates out, all 20 window values (100) qualify.
        assert outputs[-1] == pytest.approx(exact[-1], rel=0.1)

    def test_extremum_estimate_is_lower_bound_for_min(self, rng):
        xs = rng.uniform(1.0, 100.0, size=300)
        q = CorrelatedQuery("count", "min", epsilon=1.0, window=40)
        est = SlidingExtremaEstimator(q, num_buckets=8, num_intervals=8)
        for i, r in enumerate(make_records(xs)):
            est.update(r)
            true_min = xs[max(0, i - 39) : i + 1].min()
            assert est.extremum_estimate <= true_min + 1e-9

    def test_negative_values_rejected(self):
        est = SlidingExtremaEstimator(MIN_Q)
        with pytest.raises(StreamError):
            for x in [5.0] * 20 + [-1.0]:
                est.update(Record(x))

    def test_max_mode(self, rng):
        xs = rng.uniform(1.0, 100.0, size=400)
        q = CorrelatedQuery("count", "max", epsilon=1.0, window=50)
        est = SlidingExtremaEstimator(q, num_buckets=8)
        outputs = np.array([est.update(r) for r in make_records(xs)])
        exact = np.array(exact_series(make_records(xs), q))
        rmse = float(np.sqrt(np.mean((outputs - exact) ** 2)))
        assert rmse < 0.25 * exact.mean()


class TestAccuracy:
    @pytest.mark.parametrize("strategy", ["wholesale", "piecemeal"])
    def test_tracks_exact_on_lognormal(self, rng, strategy):
        xs = rng.lognormal(mean=3.0, sigma=1.0, size=2500)
        records = make_records(xs)
        q = CorrelatedQuery("count", "min", epsilon=99.0, window=500)
        est = SlidingExtremaEstimator(q, num_buckets=10, strategy=strategy)
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, q))
        rmse = float(np.sqrt(np.mean((outputs - exact) ** 2)))
        assert rmse < 0.25 * exact.mean()

    def test_periodic_rebuild_improves_drifting_stream(self, rng):
        # A slowly drifting value scale strands mass without rebuilds.
        base = np.linspace(1.0, 10.0, 2000)
        xs = base * rng.uniform(0.9, 1.1, size=2000)
        records = make_records(xs)
        q = CorrelatedQuery("count", "min", epsilon=3.0, window=400)
        exact = np.array(exact_series(records, q))

        def rmse_for(period):
            est = SlidingExtremaEstimator(q, num_buckets=8, rebuild_period=period)
            outs = np.array([est.update(r) for r in records])
            return float(np.sqrt(np.mean((outs - exact) ** 2)))

        assert rmse_for(40) <= rmse_for(0) + 1e-9

    def test_estimate_never_negative(self, rng):
        xs = rng.uniform(1.0, 50.0, size=400)
        q = CorrelatedQuery("count", "min", epsilon=0.5, window=60)
        est = SlidingExtremaEstimator(q, num_buckets=6)
        for r in make_records(xs):
            assert est.update(r) >= 0.0

    @given(
        xs=st.lists(st.floats(0.5, 500.0), min_size=1, max_size=120),
        strategy=st.sampled_from(["wholesale", "piecemeal"]),
        policy=st.sampled_from(["uniform", "quantile"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_crashes_and_bounded_by_window(self, xs, strategy, policy):
        q = CorrelatedQuery("count", "min", epsilon=2.0, window=10)
        est = SlidingExtremaEstimator(
            q, num_buckets=5, num_intervals=5, strategy=strategy, policy=policy
        )
        for r in make_records(xs):
            out = est.update(r)
            assert 0.0 <= out <= 10 + 1e-6
