"""Tests for the paper-notation query parser."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_query
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError


class TestMinQueries:
    def test_paper_figure4_query(self):
        q = parse_query("COUNT{y: x <= (1+99)*MIN(x)}")
        assert q == CorrelatedQuery("count", "min", epsilon=99.0)

    def test_strict_operator_accepted(self):
        q = parse_query("COUNT{y: x < (1+0.5)*MIN(x)}")
        assert q.independent == "min" and q.epsilon == 0.5

    def test_sum_dependent(self):
        q = parse_query("SUM{y: x <= (1+1000)*MIN(x)}")
        assert q.dependent == "sum" and q.epsilon == 1000.0

    def test_whitespace_and_case_insensitive(self):
        q = parse_query("count{ y :  x<=( 1 + 99 )*min( x ) }")
        assert q == CorrelatedQuery("count", "min", epsilon=99.0)


class TestMaxQueries:
    def test_paper_example3_shape(self):
        # "within 10% of the longest call": 1/(1+eps) = 0.9
        q = parse_query("COUNT{y: x >= MAX(x)/(1+0.11112)}")
        assert q.independent == "max"
        assert q.epsilon == pytest.approx(0.11112)


class TestAvgQueries:
    def test_one_sided(self):
        q = parse_query("COUNT{y: x > AVG(x)}")
        assert q == CorrelatedQuery("count", "avg")

    def test_two_sided_band(self):
        q = parse_query("COUNT{y: |x - AVG(x)| < 2.5}")
        assert q.two_sided and q.epsilon == 2.5

    def test_avg_dependent(self):
        q = parse_query("AVG{y: x > AVG(x)}")
        assert q.dependent == "avg"


class TestScopes:
    def test_sliding_scope(self):
        q = parse_query("COUNT{y: x > AVG(x)} OVER SLIDING(500)")
        assert q.window == 500

    def test_landmark_scope_explicit(self):
        q = parse_query("COUNT{y: x <= (1+99)*MIN(x)} OVER LANDMARK")
        assert q.window is None

    def test_default_scope_is_landmark(self):
        assert parse_query("COUNT{y: x > AVG(x)}").window is None

    def test_scope_keyword_case_insensitive(self):
        q = parse_query("sum{y: x > avg(x)} over sliding( 64 )")
        assert q.window == 64 and q.dependent == "sum"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "COUNT{x: y > AVG(x)}",  # wrong attributes
            "MEDIAN{y: x > AVG(x)}",  # unsupported dependent
            "COUNT{y: x > STDDEV(x)}",  # unsupported independent
            "COUNT{y: x <= 2*MIN(x)}",  # not the (1+eps) form
            "COUNT{y: x > AVG(x)} OVER TUMBLING(5)",
        ],
    )
    def test_rejects_with_grammar_message(self, bad):
        with pytest.raises(ConfigurationError) as exc:
            parse_query(bad)
        assert "accepted forms" in str(exc.value)

    def test_invalid_parameters_propagate(self):
        # Parses fine but the query itself is invalid (window < 2).
        with pytest.raises(ConfigurationError):
            parse_query("COUNT{y: x > AVG(x)} OVER SLIDING(1)")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "COUNT{y: x <= (1+99)*MIN(x)}",
            "SUM{y: x >= MAX(x)/(1+9)}",
            "COUNT{y: x > AVG(x)} OVER SLIDING(500)",
            "AVG{y: |x - AVG(x)| < 3}",
        ],
    )
    def test_parse_describe_parse(self, text):
        """describe() output stays parseable (modulo scope suffix)."""
        q1 = parse_query(text)
        described = q1.describe().split(" [")[0]
        suffix = f" OVER SLIDING({q1.window})" if q1.is_sliding else ""
        q2 = parse_query(described + suffix)
        assert q1 == q2
