"""Batch-vs-scalar golden parity for the columnar ingestion kernels.

``update_columns`` (and the timed variant on the time-window estimator)
must be a float-for-float transcription of the scalar ``update`` loop:
same per-record outputs under ``collect="all"``, same final estimate and
internal state under ``collect="last"``/``"none"``, same exception (with
the same partial state) when a chunk holds a record the scalar path
would reject.  These tests pin that equivalence for all five estimator
families across batch sizes 1, 7 and 4096, through mid-batch
reallocations, non-finite records, and the stdlib-``array`` fallback
used when numpy is unavailable.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro.core.landmark_avg
import repro.core.landmark_extrema
import repro.core.sliding_avg
import repro.core.sliding_extrema
import repro.streams.columns
from repro.core.engine import build_estimator
from repro.core.query import CorrelatedQuery
from repro.core.time_sliding import TimeSlidingEstimator
from repro.datasets.registry import load_dataset
from repro.exceptions import ConfigurationError, StreamError
from repro.streams.model import Record

SIZE = 1200
WINDOW = 100
BATCH_SIZES = (1, 7, 4096)

FAMILY_QUERIES = {
    "landmark_extrema": CorrelatedQuery("count", "min", epsilon=99.0),
    "landmark_avg": CorrelatedQuery("count", "avg"),
    "sliding_extrema": CorrelatedQuery("count", "min", epsilon=99.0, window=WINDOW),
    "sliding_avg": CorrelatedQuery("count", "avg", window=WINDOW),
}

FAMILY_MODULES = {
    "landmark_extrema": repro.core.landmark_extrema,
    "landmark_avg": repro.core.landmark_avg,
    "sliding_extrema": repro.core.sliding_extrema,
    "sliding_avg": repro.core.sliding_avg,
}


@pytest.fixture(scope="module")
def stream():
    return load_dataset("USAGE", size=SIZE)


@pytest.fixture(scope="module")
def columns(stream):
    xs = [r.x for r in stream]
    ys = [r.y for r in stream]
    return xs, ys


def _state_fingerprint(estimator) -> dict:
    """Every piece of kernel state the columnar path stages and writes back."""
    state: dict = {"estimate": estimator.estimate(), "obs": estimator.obs_state()}
    inner = getattr(estimator, "_inner", None)
    if inner is not None:
        state["edges"] = list(inner.edges)
        state["mass"] = inner.mass_columns()
    for name in ("_tail", "_left", "_right"):
        mass = getattr(estimator, name, None)
        if mass is not None:
            state[name] = tuple(mass)
    moments = getattr(estimator, "_moments", None)
    if moments is not None:
        state["moments"] = (
            moments._count, moments._mean, moments._m2, moments._min, moments._max
        )
    for name in ("_tracked", "_opposite"):
        tracker = getattr(estimator, name, None)
        if tracker is not None:
            state[name] = (
                list(tracker._locals),
                tracker._current,
                tracker._current_count,
                tracker._total_seen,
            )
    ring = getattr(estimator, "_ring", None)
    if ring is not None:
        state["ring"] = [(cell[0], cell[1]) for cell in ring]
    state["ssr"] = getattr(estimator, "_steps_since_rebuild", None)
    return state


def _build(family):
    return build_estimator(FAMILY_QUERIES[family], "piecemeal-uniform", num_buckets=10)


def _scalar_outputs(family, stream):
    estimator = _build(family)
    return [estimator.update(r) for r in stream], estimator


@pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_collect_all_matches_scalar(family, batch_size, stream, columns):
    """Per-record outputs are bit-identical at every batch size."""
    xs, ys = columns
    expected, single = _scalar_outputs(family, stream)
    batched = _build(family)
    got: list[float] = []
    for i in range(0, len(xs), batch_size):
        got.extend(
            batched.update_columns(xs[i : i + batch_size], ys[i : i + batch_size])
        )
    assert got == expected
    assert _state_fingerprint(batched) == _state_fingerprint(single)


@pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("collect", ["last", "none"])
def test_lean_collect_modes_match_scalar_state(
    family, batch_size, collect, stream, columns
):
    """collect='last'/'none' skip outputs but land in the identical state."""
    xs, ys = columns
    expected, single = _scalar_outputs(family, stream)
    batched = _build(family)
    last: list[float] = []
    for i in range(0, len(xs), batch_size):
        out = batched.update_columns(
            xs[i : i + batch_size], ys[i : i + batch_size], collect=collect
        )
        if collect == "none":
            assert out == []
        else:
            assert len(out) <= 1
            last = out or last
    if collect == "last":
        assert last == [expected[-1]]
    assert batched.estimate() == expected[-1]
    assert _state_fingerprint(batched) == _state_fingerprint(single)


@pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
def test_numpy_inputs_match_list_inputs(family, stream, columns):
    """float64 arrays in, Python-float state out — no numpy scalars leak."""
    xs, ys = columns
    expected, single = _scalar_outputs(family, stream)
    batched = _build(family)
    got = batched.update_columns(np.asarray(xs), np.asarray(ys))
    assert got == expected
    for edge in getattr(batched, "_inner").edges:
        assert type(edge) is float
    assert _state_fingerprint(batched) == _state_fingerprint(single)


@pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
def test_default_unit_weights(family, stream, columns):
    """``ys=None`` behaves exactly like a column of 1.0 weights."""
    xs, _ = columns
    single = _build(family)
    expected = [single.update(Record(x)) for x in xs[:400]]
    batched = _build(family)
    assert batched.update_columns(xs[:400]) == expected


@pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
def test_nonfinite_mid_chunk_matches_scalar(family, bad, stream, columns):
    """A non-finite record raises the scalar error with the scalar state."""
    xs, ys = columns
    bad_xs = xs[:500] + [bad] + xs[500:700]
    bad_ys = ys[:500] + [1.0] + ys[500:700]
    single = _build(family)
    single_exc = None
    try:
        for x, y in zip(bad_xs, bad_ys):
            single.update(Record(x, y))
    except StreamError as exc:
        single_exc = str(exc)
    assert single_exc is not None
    batched = _build(family)
    with pytest.raises(StreamError) as caught:
        batched.update_columns(bad_xs, bad_ys, collect="none")
    assert str(caught.value) == single_exc
    assert _state_fingerprint(batched) == _state_fingerprint(single)


@pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
def test_mid_batch_reallocation_parity(family, stream):
    """A regime shift inside one chunk reallocates exactly like the scalar path.

    The stream trebles its scale mid-chunk, which drags the focus target
    away from the fitted interval and forces reallocation (and, for the
    extrema families, a near-disjoint regime rebuild) while the kernel is
    deep inside a vectorised segment.
    """
    shifted = [Record(r.x, r.y) for r in stream[:400]]
    shifted += [Record(r.x * 3.0 + 50.0, r.y) for r in stream[400:800]]
    xs = [r.x for r in shifted]
    ys = [r.y for r in shifted]
    single = _build(family)
    expected = [single.update(r) for r in shifted]
    batched = _build(family)
    assert batched.update_columns(xs, ys) == expected
    assert _state_fingerprint(batched) == _state_fingerprint(single)


@pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
def test_array_module_fallback(family, stream, columns, monkeypatch):
    """Without numpy the same entry point runs the scalar loop unchanged."""
    xs, ys = columns
    monkeypatch.setattr(repro.streams.columns, "HAVE_NUMPY", False)
    # sliding_avg has no vectorised kernel, hence no HAVE_NUMPY gate to patch.
    monkeypatch.setattr(FAMILY_MODULES[family], "HAVE_NUMPY", False, raising=False)
    single = _build(family)
    expected = [single.update(r) for r in stream[:300]]
    batched = _build(family)
    assert batched.update_columns(xs[:300], ys[:300]) == expected
    assert _state_fingerprint(batched) == _state_fingerprint(single)


def test_mismatched_columns_rejected(columns):
    xs, ys = columns
    estimator = _build("landmark_extrema")
    with pytest.raises(ConfigurationError):
        estimator.update_columns(xs[:10], ys[:9])


def test_bad_collect_mode_did_you_mean():
    estimator = _build("landmark_extrema")
    with pytest.raises(ConfigurationError, match="collect"):
        estimator.update_columns([1.0], [1.0], collect="lsat")


# ------------------------------------------------------------- time-sliding

TIMED_QUERY = CorrelatedQuery("count", "min", epsilon=99.0)


def _timed_stream(stream):
    times = [i * 0.5 for i in range(len(stream))]
    return times, stream


def test_time_sliding_columns_timed_matches_scalar(stream):
    times, records = _timed_stream(stream)
    xs = [r.x for r in records]
    ys = [r.y for r in records]
    single = TimeSlidingEstimator(TIMED_QUERY, duration=50.0, num_buckets=10)
    expected = [single.update(t, r) for t, r in zip(times, records)]
    batched = TimeSlidingEstimator(TIMED_QUERY, duration=50.0, num_buckets=10)
    assert batched.update_columns_timed(times, xs, ys) == expected
    assert batched.obs_state() == single.obs_state()
    for collect, want in (("last", [expected[-1]]), ("none", [])):
        lean = TimeSlidingEstimator(TIMED_QUERY, duration=50.0, num_buckets=10)
        assert lean.update_columns_timed(times, xs, ys, collect=collect) == want
        assert lean.estimate() == expected[-1]
        assert lean.obs_state() == single.obs_state()


def test_time_sliding_columns_timed_length_mismatch(stream):
    estimator = TimeSlidingEstimator(TIMED_QUERY, duration=50.0, num_buckets=10)
    with pytest.raises(ConfigurationError, match="mismatched"):
        estimator.update_columns_timed([1.0, 2.0], [1.0])


def test_time_sliding_update_many_timed_collect_modes(stream):
    times, records = _timed_stream(stream[:200])
    single = TimeSlidingEstimator(TIMED_QUERY, duration=50.0, num_buckets=10)
    expected = [single.update(t, r) for t, r in zip(times, records)]
    timed = list(zip(times, records))
    for collect, want in (("all", expected), ("last", [expected[-1]]), ("none", [])):
        batched = TimeSlidingEstimator(TIMED_QUERY, duration=50.0, num_buckets=10)
        assert batched.update_many_timed(timed, collect=collect) == want
        assert batched.estimate() == expected[-1]
