"""Tests for the multi-query engine."""

from __future__ import annotations

import pytest

from repro.core.exact import exact_series
from repro.core.multiplex import QueryEngine
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from tests.conftest import make_records

MIN_Q = CorrelatedQuery("count", "min", epsilon=9.0)
AVG_Q = CorrelatedQuery("count", "avg")


class TestRegistry:
    def test_register_and_len(self):
        engine = QueryEngine()
        engine.register("a", MIN_Q)
        engine.register("b", AVG_Q)
        assert len(engine) == 2
        assert "a" in engine and "c" not in engine

    def test_register_from_paper_notation(self):
        engine = QueryEngine()
        resolved = engine.register("q", "SUM{y: x > AVG(x)} OVER SLIDING(50)")
        assert resolved.dependent == "sum" and resolved.window == 50

    def test_duplicate_name_rejected(self):
        engine = QueryEngine()
        engine.register("a", MIN_Q)
        with pytest.raises(ConfigurationError):
            engine.register("a", AVG_Q)

    def test_deregister(self):
        engine = QueryEngine()
        engine.register("a", MIN_Q)
        assert engine.deregister("a")
        assert not engine.deregister("a")
        assert len(engine) == 0

    def test_query_for(self):
        engine = QueryEngine()
        engine.register("a", MIN_Q)
        assert engine.query_for("a") is MIN_Q
        with pytest.raises(StreamError):
            engine.query_for("zzz")


class TestFanOut:
    def test_single_pass_matches_individual_runs(self, rng):
        records = make_records(rng.uniform(1.0, 100.0, size=400))
        engine = QueryEngine()
        engine.register("min", MIN_Q)
        engine.register("avg", AVG_Q)
        last: dict[str, float] = {}
        for r in records:
            last = engine.update(r)

        from repro.core.engine import build_estimator

        solo_min = build_estimator(MIN_Q, "piecemeal-uniform")
        solo_avg = build_estimator(AVG_Q, "piecemeal-uniform")
        for r in records:
            expected_min = solo_min.update(r)
            expected_avg = solo_avg.update(r)
        assert last["min"] == expected_min
        assert last["avg"] == expected_avg

    def test_mid_stream_registration_starts_fresh_landmark(self, rng):
        records = make_records(rng.uniform(1.0, 100.0, size=200))
        engine = QueryEngine(method="heuristic-running")
        for r in records[:100]:
            engine.update(r)
        engine.register("late", AVG_Q)
        for r in records[100:]:
            engine.update(r)
        # The late query only saw the second half — its landmark is the
        # registration point, exactly the paper's ad hoc scenario.
        expected = exact_series(records[100:], AVG_Q)[-1]
        assert engine.report()["late"] == pytest.approx(expected, abs=8.0)

    def test_report_without_update(self):
        engine = QueryEngine()
        engine.register("a", MIN_Q)
        engine.update(make_records([5.0])[0])
        snapshot = engine.report()
        assert snapshot == {"a": 1.0}
        assert engine.position == 1


class TestSubscriptions:
    def test_periodic_callbacks(self, rng):
        engine = QueryEngine()
        engine.register("a", AVG_Q)
        seen: list[int] = []
        engine.subscribe(25, lambda position, report: seen.append(position))
        for r in make_records(rng.uniform(1.0, 10.0, size=100)):
            engine.update(r)
        assert seen == [25, 50, 75, 100]

    def test_callback_receives_report(self, rng):
        engine = QueryEngine()
        engine.register("a", AVG_Q)
        payloads: list[dict] = []
        engine.subscribe(10, lambda _, report: payloads.append(dict(report)))
        for r in make_records(rng.uniform(1.0, 10.0, size=20)):
            engine.update(r)
        assert len(payloads) == 2
        assert set(payloads[0]) == {"a"}

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            QueryEngine().subscribe(0, lambda *_: None)


class TestSerialisation:
    def test_engine_with_lambda_subscriber_pickles(self, rng):
        # Regression: pickling an engine used to fail with PicklingError the
        # moment any subscriber was a lambda or closure; checkpointing must
        # drop the process-local callbacks instead.
        import pickle

        engine = QueryEngine()
        engine.register("a", MIN_Q)
        engine.subscribe(5, lambda *_: None)
        records = make_records(rng.uniform(1.0, 100.0, size=30))
        for r in records:
            engine.update(r)
        restored = pickle.loads(pickle.dumps(engine))
        assert restored.report() == engine.report()
        assert restored.position == engine.position

    def test_obs_state_exposes_children(self, rng):
        engine = QueryEngine()
        engine.register("a", MIN_Q)
        engine.register("b", AVG_Q)
        for r in make_records(rng.uniform(1.0, 100.0, size=10)):
            engine.update(r)
        gauges = engine.obs_state()
        assert gauges["queries"] == 2.0
        assert gauges["position"] == 10.0
        assert any(key.startswith("a.") for key in gauges)
