"""Edge-case coverage across the estimators.

Degenerate streams (zeros, constants, single tuples), extreme parameters,
and state-accessor behaviour that the main accuracy tests do not touch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import build_estimator, methods_for_query
from repro.core.landmark_extrema import LandmarkExtremaEstimator
from repro.core.query import CorrelatedQuery
from repro.core.time_sliding import TimeSlidingEstimator
from repro.streams.model import Record
from tests.conftest import make_records

MIN_Q = CorrelatedQuery("count", "min", epsilon=1.0)
AVG_Q = CorrelatedQuery("count", "avg")


class TestDegenerateStreams:
    def test_zero_minimum_survives(self):
        # (1+eps) * 0 == 0 would make the region degenerate; the estimator
        # widens it minimally instead of crashing.
        est = LandmarkExtremaEstimator(MIN_Q, num_buckets=4)
        outputs = [est.update(r) for r in make_records([0.0, 1.0, 0.0, 2.0])]
        assert all(np.isfinite(o) and o >= 0.0 for o in outputs)

    def test_single_tuple_stream(self):
        for query in (MIN_Q, AVG_Q):
            for method in methods_for_query(query):
                est = build_estimator(query, method, stream=make_records([7.0]))
                out = est.update(Record(7.0))
                assert np.isfinite(out)

    def test_constant_stream_all_methods(self):
        records = make_records([5.0] * 50)
        for method in methods_for_query(MIN_Q):
            est = build_estimator(MIN_Q, method, stream=records)
            for r in records:
                out = est.update(r)
            # Every value is within (1+eps) of the min: count == n.
            assert out == pytest.approx(50.0, abs=1.0), method

    def test_two_distinct_values_avg(self):
        records = make_records([1.0, 9.0] * 40)
        est = build_estimator(AVG_Q, "piecemeal-uniform", num_buckets=4)
        for r in records:
            out = est.update(r)
        # Mean is 5; the forty 9.0s qualify.
        assert out == pytest.approx(40.0, abs=2.0)

    def test_strictly_increasing_stream_min(self):
        # The minimum never changes after the first tuple: no reallocation
        # path is ever exercised, estimates must still be sane.
        records = make_records(np.linspace(1.0, 2.0, 100))
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        for r in records:
            out = est.update(r)
        assert out == pytest.approx(100.0, abs=1.0)  # all within 2x of min 1.0

    def test_strictly_decreasing_stream_min(self):
        # Every tuple is a new minimum: maximal reallocation churn.
        records = make_records(np.linspace(100.0, 1.0, 100))
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        for r in records:
            out = est.update(r)
        assert np.isfinite(out) and out >= 1.0


class TestParameterExtremes:
    def test_minimum_bucket_budgets(self, rng):
        xs = rng.uniform(1.0, 100.0, size=200)
        cases = [
            (MIN_Q, "piecemeal-uniform", 2),
            (AVG_Q, "piecemeal-uniform", 4),
            (CorrelatedQuery("count", "min", epsilon=1.0, window=20), "piecemeal-uniform", 3),
            (CorrelatedQuery("count", "avg", window=20), "piecemeal-uniform", 4),
        ]
        for query, method, m in cases:
            est = build_estimator(query, method, num_buckets=m)
            for r in make_records(xs):
                out = est.update(r)
            assert np.isfinite(out)

    def test_huge_epsilon(self, rng):
        query = CorrelatedQuery("count", "min", epsilon=1e9)
        est = build_estimator(query, "piecemeal-uniform")
        records = make_records(rng.uniform(1.0, 100.0, size=300))
        for r in records:
            out = est.update(r)
        assert out == pytest.approx(300.0, rel=0.02)  # everything qualifies

    def test_tiny_epsilon(self, rng):
        query = CorrelatedQuery("count", "min", epsilon=1e-9)
        est = build_estimator(query, "piecemeal-uniform")
        records = make_records(rng.uniform(1.0, 100.0, size=300))
        for r in records:
            out = est.update(r)
        assert 0.0 <= out <= 5.0  # essentially only the minimum itself


class TestTimeSlidingEdges:
    def test_estimate_before_any_update(self):
        est = TimeSlidingEstimator(AVG_Q, duration=10.0)
        assert est.estimate() == 0.0

    def test_simultaneous_timestamps_allowed(self):
        est = TimeSlidingEstimator(AVG_Q, duration=10.0)
        for _ in range(20):
            out = est.update(5.0, Record(3.0))
        assert np.isfinite(out)

    def test_tuple_coercion(self):
        est = TimeSlidingEstimator(AVG_Q, duration=10.0)
        out = est.update(1.0, (4.0, 2.0))  # bare tuple accepted
        assert np.isfinite(out)


class TestAccessors:
    def test_query_property_everywhere(self):
        for query in (MIN_Q, AVG_Q):
            for method in methods_for_query(query):
                est = build_estimator(query, method, stream=make_records([1.0, 2.0]))
                if hasattr(est, "query"):
                    assert est.query is query

    def test_extremum_property_is_exact(self, rng):
        xs = rng.uniform(1.0, 100.0, size=200)
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        for i, r in enumerate(make_records(xs)):
            est.update(r)
            assert est.extremum == xs[: i + 1].min()
