"""Tests for the CorrelatedQuery specification."""

from __future__ import annotations

import pytest

from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_defaults_require_epsilon_for_extrema(self):
        with pytest.raises(ConfigurationError):
            CorrelatedQuery("count", "min")  # epsilon defaults to 0

    def test_avg_needs_no_epsilon(self):
        q = CorrelatedQuery("count", "avg")
        assert q.epsilon == 0.0

    def test_unknown_dependent(self):
        with pytest.raises(ConfigurationError):
            CorrelatedQuery("median", "min", epsilon=1.0)

    def test_unknown_independent(self):
        with pytest.raises(ConfigurationError):
            CorrelatedQuery("count", "stddev")

    def test_window_lower_bound(self):
        with pytest.raises(ConfigurationError):
            CorrelatedQuery("count", "avg", window=1)

    def test_frozen(self):
        q = CorrelatedQuery("count", "avg")
        with pytest.raises(AttributeError):
            q.dependent = "sum"  # type: ignore[misc]


class TestSemantics:
    def test_min_threshold(self):
        q = CorrelatedQuery("count", "min", epsilon=99.0)
        assert q.threshold(2.0) == 200.0

    def test_max_threshold(self):
        q = CorrelatedQuery("count", "max", epsilon=9.0)
        assert q.threshold(100.0) == 10.0

    def test_avg_threshold_is_identity(self):
        q = CorrelatedQuery("count", "avg")
        assert q.threshold(42.0) == 42.0

    def test_min_qualifies_inclusive(self):
        q = CorrelatedQuery("count", "min", epsilon=1.0)
        assert q.qualifies(2.0, 1.0)  # 2 <= 2
        assert not q.qualifies(2.1, 1.0)

    def test_max_qualifies_inclusive(self):
        q = CorrelatedQuery("count", "max", epsilon=1.0)
        assert q.qualifies(5.0, 10.0)  # 5 >= 10/2
        assert not q.qualifies(4.9, 10.0)

    def test_avg_qualifies_strict(self):
        q = CorrelatedQuery("count", "avg")
        assert not q.qualifies(5.0, 5.0)
        assert q.qualifies(5.01, 5.0)

    def test_contribution(self):
        count_q = CorrelatedQuery("count", "avg")
        sum_q = CorrelatedQuery("sum", "avg")
        assert count_q.contribution(7.0) == 1.0
        assert sum_q.contribution(7.0) == 7.0

    def test_is_sliding(self):
        assert CorrelatedQuery("count", "avg", window=10).is_sliding
        assert not CorrelatedQuery("count", "avg").is_sliding

    def test_describe(self):
        q = CorrelatedQuery("count", "min", epsilon=99.0)
        text = q.describe()
        assert "COUNT" in text and "MIN" in text and "landmark" in text
        q2 = CorrelatedQuery("sum", "avg", window=500)
        assert "sliding w=500" in q2.describe()
        q3 = CorrelatedQuery("sum", "max", epsilon=9.0)
        assert "MAX" in q3.describe()
