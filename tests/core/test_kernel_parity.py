"""Golden parity for the focused-estimator kernel.

The fixture in ``fixtures/kernel_parity.json`` was recorded by
``tools/record_parity_fixtures.py`` *before* the five focused estimators
were collapsed onto :class:`~repro.core.focused.FocusedEstimatorBase`.
These tests replay the identical configurations and assert byte-identical
behaviour — every per-step output, every final ``obs_state()`` gauge, and
every lifecycle-event counter — so the refactored lifecycle provably
computes the same floats in the same order as the original five modules.

The second half asserts the batched-ingestion contract: for every method
name in :data:`~repro.core.engine.METHODS` (and the time-sliding
estimator), ``update_many(records)`` returns exactly the outputs of
calling ``update`` once per record.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.engine import METHODS, build_estimator
from repro.core.query import CorrelatedQuery
from repro.core.time_sliding import TimeSlidingEstimator
from repro.datasets.registry import load_dataset
from repro.obs.sink import RecordingSink

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "kernel_parity.json"

with FIXTURE_PATH.open() as fh:
    FIXTURE = json.load(fh)

RUN_KEYS = sorted(FIXTURE["runs"])


@pytest.fixture(scope="module")
def stream():
    spec = FIXTURE["stream"]
    return load_dataset(spec["dataset"], size=spec["size"])


def _query_for(shape_name: str) -> CorrelatedQuery:
    window = FIXTURE["window"] if shape_name.startswith("sliding") else None
    if shape_name.endswith("-min"):
        return CorrelatedQuery("count", "min", epsilon=99.0, window=window)
    if shape_name == "landmark-avg" or shape_name == "time-avg":
        return CorrelatedQuery("sum", "avg", window=window)
    return CorrelatedQuery("count", "avg", window=window)


def _replay(run_key: str, stream):
    method, shape_name = run_key.split("/")
    query = _query_for(shape_name)
    sink = RecordingSink()
    if shape_name.startswith("time"):
        strategy, policy = method.split("-")
        estimator = TimeSlidingEstimator(
            query,
            duration=FIXTURE["duration"],
            num_buckets=FIXTURE["num_buckets"],
            strategy=strategy,
            policy=policy,
            sink=sink,
        )
        outputs = [
            estimator.update(time=i * 0.5, record=r) for i, r in enumerate(stream)
        ]
    else:
        estimator = build_estimator(
            query, method, num_buckets=FIXTURE["num_buckets"], sink=sink
        )
        outputs = [estimator.update(r) for r in stream]
    events = {
        name: value
        for name, value in sink.registry.as_dict().items()
        if name.startswith("events.")
    }
    return outputs, estimator.obs_state(), events


@pytest.mark.parametrize("run_key", RUN_KEYS)
def test_outputs_match_golden(run_key, stream):
    """Every per-step output is bit-for-bit the pre-refactor value."""
    golden = FIXTURE["runs"][run_key]
    outputs, obs_state, events = _replay(run_key, stream)
    assert outputs == golden["outputs"]
    assert obs_state == golden["obs_state"]
    assert events == golden["events"]


# --------------------------------------------------------- update_many ≡ update

BATCH_SLICE = 300
BATCH_WINDOW = 100

_BATCH_QUERIES = {
    "min-landmark": CorrelatedQuery("count", "min", epsilon=99.0),
    "avg-landmark": CorrelatedQuery("sum", "avg"),
    "min-sliding": CorrelatedQuery("count", "min", epsilon=99.0, window=BATCH_WINDOW),
    "avg-sliding": CorrelatedQuery("count", "avg", window=BATCH_WINDOW),
}


def _batch_cases():
    """Every METHODS entry, paired with each query shape it supports."""
    cases = []
    for method in METHODS:
        for shape, query in _BATCH_QUERIES.items():
            if query.is_sliding and method in (
                "streaming-equidepth",
                "heuristic-reset",
                "heuristic-continue",
                "heuristic-running",
            ):
                continue  # landmark-only methods
            if query.independent == "avg" and method in (
                "heuristic-reset",
                "heuristic-continue",
            ):
                continue
            if query.independent in ("min", "max") and method == "heuristic-running":
                continue
            cases.append((method, shape))
    return cases


@pytest.mark.parametrize("method,shape", _batch_cases())
def test_update_many_equals_repeated_update(method, shape, stream):
    """``update_many`` is an exact batch transcription of ``update``."""
    records = stream[:BATCH_SLICE]
    query = _BATCH_QUERIES[shape]
    single = build_estimator(query, method, num_buckets=10, stream=records)
    batched = build_estimator(query, method, num_buckets=10, stream=records)
    expected = [single.update(r) for r in records]
    got = batched.update_many(records)
    assert got == expected
    # Split batches hit the same state transitions as one big batch.
    chunked = build_estimator(query, method, num_buckets=10, stream=records)
    out = []
    for i in range(0, len(records), 37):
        out.extend(chunked.update_many(records[i : i + 37]))
    assert out == expected


def test_update_many_accepts_bare_tuples(stream):
    """Batched ingestion coerces ``(x, y)`` tuples exactly like run_stream."""
    records = stream[:50]
    query = _BATCH_QUERIES["min-landmark"]
    single = build_estimator(query, "piecemeal-uniform", num_buckets=10)
    batched = build_estimator(query, "piecemeal-uniform", num_buckets=10)
    expected = [single.update(r) for r in records]
    assert batched.update_many([(r.x, r.y) for r in records]) == expected


def test_update_many_time_sliding(stream):
    """The time-window estimator batches (time, record) pairs exactly."""
    records = stream[:BATCH_SLICE]
    query = CorrelatedQuery("count", "min", epsilon=99.0)
    single = TimeSlidingEstimator(query, duration=50.0, num_buckets=10)
    batched = TimeSlidingEstimator(query, duration=50.0, num_buckets=10)
    expected = [
        single.update(time=i * 0.5, record=r) for i, r in enumerate(records)
    ]
    timed = [(i * 0.5, r) for i, r in enumerate(records)]
    assert batched.update_many_timed(timed) == expected
