"""Tests for the paper's stated extensions: two-sided AVG bands and AVG as
the dependent aggregate.

The paper (Section 3.1): "it is straightforward how to extend our
techniques to deal with two-sided correlations such as
COUNT{y: (AVG(x)-eps) < x < (AVG(x)+eps)}" — this module verifies that the
extension actually works end to end, for the oracle, the heuristics, the
focused estimators, and the traditional baselines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import build_estimator
from repro.core.exact import exact_series
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from repro.structures.welford import RunningMoments
from tests.conftest import brute_force_series, make_records


class TestTwoSidedQuerySpec:
    def test_requires_avg_independent(self):
        with pytest.raises(ConfigurationError):
            CorrelatedQuery("count", "min", epsilon=1.0, two_sided=True)

    def test_requires_positive_epsilon(self):
        with pytest.raises(ConfigurationError):
            CorrelatedQuery("count", "avg", two_sided=True)

    def test_band_centred_on_mean(self):
        q = CorrelatedQuery("count", "avg", epsilon=2.0, two_sided=True)
        assert q.band(10.0) == (8.0, 12.0)

    def test_qualifies_strict(self):
        q = CorrelatedQuery("count", "avg", epsilon=2.0, two_sided=True)
        assert q.qualifies(9.0, 10.0)
        assert not q.qualifies(8.0, 10.0)  # strict bounds
        assert not q.qualifies(12.0, 10.0)

    def test_describe(self):
        q = CorrelatedQuery("count", "avg", epsilon=2.0, two_sided=True)
        assert "|x - AVG(x)| < 2" in q.describe()


class TestTwoSidedExact:
    def test_small_example(self):
        records = make_records([1.0, 5.0, 9.0])
        q = CorrelatedQuery("count", "avg", epsilon=2.0, two_sided=True)
        # means: 1, 3, 5; bands: (-1,3), (1,5), (3,7) -> counts 1, 0, 1
        assert exact_series(records, q) == [1.0, 0.0, 1.0]

    @given(
        xs=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=40),
        epsilon=st.floats(0.5, 20.0),
        window=st.sampled_from([None, 5]),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, xs, epsilon, window):
        records = make_records(xs, [x + 1.0 for x in xs])
        q = CorrelatedQuery("sum", "avg", epsilon=epsilon, window=window, two_sided=True)
        assert exact_series(records, q) == pytest.approx(
            brute_force_series(records, q), rel=1e-9, abs=1e-6
        )


class TestTwoSidedEstimators:
    @pytest.mark.parametrize(
        "method",
        ["piecemeal-uniform", "wholesale-uniform", "equidepth", "heuristic-running"],
    )
    def test_landmark_accuracy(self, rng, method):
        xs = rng.normal(loc=50.0, scale=8.0, size=2000)
        records = make_records(np.abs(xs) + 0.1)
        q = CorrelatedQuery("count", "avg", epsilon=8.0, two_sided=True)
        est = build_estimator(q, method, num_buckets=10, stream=records)
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, q))
        rmse = float(np.sqrt(np.mean((outputs - exact) ** 2)))
        assert rmse < 0.15 * exact[-1]

    def test_sliding_accuracy(self, rng):
        xs = np.abs(rng.normal(loc=50.0, scale=8.0, size=1500)) + 0.1
        records = make_records(xs)
        q = CorrelatedQuery("count", "avg", epsilon=8.0, window=300, two_sided=True)
        est = build_estimator(q, "piecemeal-uniform", num_buckets=10)
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, q))
        rmse = float(np.sqrt(np.mean((outputs - exact) ** 2)))
        assert rmse < 0.2 * exact.mean()

    def test_focused_buckets_sit_on_the_band(self, rng):
        # The CLT focus interval contains the mean, which centres the band;
        # a two-sided query's error should beat whole-domain equiwidth.
        xs = np.abs(rng.lognormal(mean=3.0, sigma=1.0, size=2000)) + 0.1
        records = make_records(xs)
        q = CorrelatedQuery("count", "avg", epsilon=5.0, two_sided=True)
        exact = np.array(exact_series(records, q))

        def rmse(method):
            est = build_estimator(q, method, num_buckets=10, stream=records)
            out = np.array([est.update(r) for r in records])
            return float(np.sqrt(np.mean((out - exact) ** 2)))

        assert rmse("piecemeal-uniform") < rmse("equiwidth")


class TestAvgDependent:
    def test_value_from(self):
        q = CorrelatedQuery("avg", "avg")
        assert q.value_from(4.0, 10.0) == 2.5
        assert q.value_from(0.0, 0.0) == 0.0  # empty set -> neutral answer

    def test_exact_small_example(self):
        records = make_records([1.0, 10.0, 10.0], ys=[0.0, 6.0, 8.0])
        q = CorrelatedQuery("avg", "avg")
        # step 3: mean x = 7, qualifying x > 7: the two 10s, avg y = 7.
        assert exact_series(records, q)[-1] == pytest.approx(7.0)

    @given(
        xs=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=40),
        independent=st.sampled_from(["min", "max", "avg"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, xs, independent):
        records = make_records(xs, [2.0 * x for x in xs])
        q = CorrelatedQuery("avg", independent, epsilon=1.0)
        fast = exact_series(records, q)
        slow = []
        for i in range(1, len(records) + 1):
            scope = records[:i]
            vals = [r.x for r in scope]
            if independent in ("min", "max"):
                ind = min(vals) if independent == "min" else max(vals)
            else:
                # Use the same Welford recurrence as the oracle: a value can
                # sit exactly on the mean, where a last-ulp difference
                # between sum/len and Welford flips the strict predicate.
                moments = RunningMoments()
                for v in vals:
                    moments.push(v)
                ind = moments.mean
            qualifying = [r.y for r in scope if q.qualifies(r.x, ind)]
            slow.append(sum(qualifying) / len(qualifying) if qualifying else 0.0)
        assert fast == pytest.approx(slow, rel=1e-9, abs=1e-6)

    def test_estimator_tracks_avg_dependent(self, rng):
        xs = rng.uniform(1.0, 100.0, size=1500)
        ys = xs * 0.5 + rng.uniform(0.0, 5.0, size=1500)
        records = make_records(xs, ys)
        q = CorrelatedQuery("avg", "min", epsilon=9.0)
        est = build_estimator(q, "piecemeal-uniform", num_buckets=10)
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, q))
        # Ratio estimates are noisier; compare the tail of the stream.
        assert outputs[-1] == pytest.approx(exact[-1], rel=0.15)

    def test_heuristic_supports_avg_dependent(self, rng):
        xs = np.abs(rng.normal(50.0, 5.0, size=1000)) + 0.1
        records = make_records(xs, xs * 2.0)
        q = CorrelatedQuery("avg", "avg")
        est = build_estimator(q, "heuristic-running")
        outputs = [est.update(r) for r in records]
        exact = exact_series(records, q)
        assert outputs[-1] == pytest.approx(exact[-1], rel=0.1)
