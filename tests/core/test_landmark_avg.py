"""Tests for the landmark AVG estimator (paper Section 3.1.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_series
from repro.core.landmark_avg import LandmarkAvgEstimator
from repro.histograms.mass import pour_uniform
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import BucketArray, Mass
from repro.streams.model import Record
from tests.conftest import make_records

AVG_Q = CorrelatedQuery("count", "avg")


class TestPourUniform:
    def test_spreads_mass_proportionally(self):
        h = BucketArray([0.0, 1.0, 2.0])
        pour_uniform(h, 0.0, 2.0, Mass(4.0, 8.0))
        assert h.counts == pytest.approx([2.0, 2.0])
        assert h.weights == pytest.approx([4.0, 4.0])

    def test_partial_overlap(self):
        h = BucketArray([0.0, 1.0, 2.0])
        pour_uniform(h, 0.5, 1.5, Mass(2.0, 2.0))
        assert h.counts == pytest.approx([1.0, 1.0])

    def test_degenerate_span_drops_into_nearest_bucket(self):
        h = BucketArray([0.0, 1.0])
        pour_uniform(h, 5.0, 5.0, Mass(3.0, 3.0))
        assert h.total() == Mass(3.0, 3.0)

    def test_zero_mass_is_noop(self):
        h = BucketArray([0.0, 1.0])
        pour_uniform(h, 0.0, 1.0, Mass(0.0, 0.0))
        assert h.total() == Mass(0.0, 0.0)


class TestValidation:
    def test_requires_avg_query(self):
        with pytest.raises(ConfigurationError):
            LandmarkAvgEstimator(CorrelatedQuery("count", "min", epsilon=1.0))

    def test_rejects_sliding(self):
        with pytest.raises(ConfigurationError):
            LandmarkAvgEstimator(CorrelatedQuery("count", "avg", window=10))

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            LandmarkAvgEstimator(AVG_Q, num_buckets=3)  # needs >= 4
        with pytest.raises(ConfigurationError):
            LandmarkAvgEstimator(AVG_Q, strategy="other")
        with pytest.raises(ConfigurationError):
            LandmarkAvgEstimator(AVG_Q, policy="other")
        with pytest.raises(ConfigurationError):
            LandmarkAvgEstimator(AVG_Q, k_std=0.0)
        with pytest.raises(ConfigurationError):
            LandmarkAvgEstimator(AVG_Q, drift_tolerance=0.0)

    def test_focus_interval_before_build_raises(self):
        est = LandmarkAvgEstimator(AVG_Q)
        with pytest.raises(StreamError):
            est.focus_interval


class TestWarmupAndFocus:
    def test_exact_during_warmup(self):
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=6)
        records = make_records([2.0, 4.0, 6.0])
        exact = exact_series(records, AVG_Q)
        assert [est.update(r) for r in records] == exact

    def test_histogram_built_after_m_tuples(self):
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=4)
        for x in [1.0, 2.0, 3.0]:
            est.update(Record(x))
        assert est.histogram is None
        est.update(Record(4.0))
        assert est.histogram is not None
        assert est.histogram.num_buckets == 2  # m - 2 tails

    def test_focus_contains_mean(self, rng):
        xs = rng.normal(loc=10.0, scale=2.0, size=500)
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=10)
        for r in make_records(np.abs(xs) + 0.1):
            est.update(r)
        lo, hi = est.focus_interval
        assert lo <= est.mean <= hi

    def test_focus_shrinks_with_n(self, rng):
        xs = np.abs(rng.normal(loc=10.0, scale=2.0, size=4000)) + 0.1
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=10)
        widths = []
        for i, r in enumerate(make_records(xs)):
            est.update(r)
            if i in (500, 3999):
                lo, hi = est.focus_interval
                widths.append(hi - lo)
        assert widths[1] < widths[0]

    def test_constant_stream_handled(self):
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=4)
        for _ in range(20):
            out = est.update(Record(5.0))
        assert out == pytest.approx(0.0, abs=1e-6)  # nothing is > mean


class TestAccuracy:
    @pytest.mark.parametrize("strategy", ["wholesale", "piecemeal"])
    @pytest.mark.parametrize("policy", ["uniform", "quantile"])
    def test_close_to_exact_on_iid_stream(self, rng, strategy, policy):
        xs = rng.lognormal(mean=2.0, sigma=0.8, size=3000)
        records = make_records(xs)
        est = LandmarkAvgEstimator(
            AVG_Q, num_buckets=10, strategy=strategy, policy=policy
        )
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, AVG_Q))
        rmse = float(np.sqrt(np.mean((outputs - exact) ** 2)))
        assert rmse < 0.08 * exact[-1]

    def test_sum_dependent(self, rng):
        xs = rng.uniform(1.0, 100.0, size=1000)
        ys = rng.uniform(0.0, 5.0, size=1000)
        records = make_records(xs, ys)
        q = CorrelatedQuery("sum", "avg")
        est = LandmarkAvgEstimator(q, num_buckets=10)
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, q))
        assert outputs[-1] == pytest.approx(exact[-1], rel=0.1)

    def test_estimate_never_negative_nor_above_n(self, rng):
        xs = rng.exponential(scale=5.0, size=400) + 0.1
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=6)
        for i, r in enumerate(make_records(xs), start=1):
            out = est.update(r)
            assert 0.0 <= out <= i + 1e-6

    @given(xs=st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_never_crashes(self, xs):
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=5)
        for r in make_records(xs):
            out = est.update(r)
            assert np.isfinite(out)

    @given(
        xs=st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=80),
        strategy=st.sampled_from(["wholesale", "piecemeal"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_narrow_focus_survives_disjoint_jumps(self, xs, strategy):
        # With a very narrow interval, the mean can jump past the entire
        # focus between reallocations — regression test for the disjoint
        # reallocation path.
        est = LandmarkAvgEstimator(AVG_Q, num_buckets=5, strategy=strategy, k_std=0.25)
        for r in make_records(xs):
            out = est.update(r)
            assert np.isfinite(out) and out >= 0.0


class TestMovedHelperShim:
    """The band-mass helpers moved to repro.histograms.mass; the old
    module path keeps one release of deprecated aliases."""

    @pytest.mark.parametrize("name", ["band_mass", "band_bounds", "pour_uniform"])
    def test_alias_warns_and_resolves(self, name):
        import repro.core.landmark_avg as old
        from repro.histograms import mass

        # Served by module __getattr__ on every access (never cached), so
        # the warning fires each time.
        with pytest.warns(DeprecationWarning, match="repro.histograms.mass"):
            assert getattr(old, name) is getattr(mass, name)

    def test_unknown_attribute_still_raises(self):
        import repro.core.landmark_avg as old

        with pytest.raises(AttributeError):
            old.no_such_helper
