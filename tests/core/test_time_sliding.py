"""Tests for time-based sliding windows (trackers + estimator)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import CorrelatedQuery
from repro.core.time_sliding import TimeSlidingEstimator
from repro.exceptions import ConfigurationError, StreamError
from repro.streams.model import Record
from repro.structures.time_intervals import TimeIntervalExtremaTracker

MIN_Q = CorrelatedQuery("count", "min", epsilon=1.0)
AVG_Q = CorrelatedQuery("count", "avg")


def brute_force_time_series(events, query, duration):
    """events: list of (time, Record). Exact answer after each event."""
    out = []
    for i in range(len(events)):
        now = events[i][0]
        scope = [r for t, r in events[: i + 1] if t > now - duration]
        xs = [r.x for r in scope]
        if query.independent == "min":
            ind = min(xs)
        elif query.independent == "max":
            ind = max(xs)
        else:
            ind = math.fsum(xs) / len(xs)
        qualifying = [r for r in scope if query.qualifies(r.x, ind)]
        count, weight = float(len(qualifying)), sum(r.y for r in qualifying)
        out.append(query.value_from(count, weight))
    return out


class TestTimeIntervalTracker:
    def test_tracks_min_within_duration(self):
        t = TimeIntervalExtremaTracker(duration=10.0, num_intervals=5, mode="min")
        t.push(0.0, 5.0)
        t.push(1.0, 3.0)
        t.push(2.0, 8.0)
        assert t.extremum() == 3.0

    def test_old_extremum_expires_by_time(self):
        t = TimeIntervalExtremaTracker(duration=10.0, num_intervals=5, mode="min")
        t.push(0.0, 1.0)
        t.push(50.0, 7.0)  # far in the future: everything old expired
        assert t.extremum() == 7.0

    def test_min_is_conservative_lower_bound(self):
        rng = np.random.default_rng(0)
        t = TimeIntervalExtremaTracker(duration=5.0, num_intervals=5, mode="min")
        events = []
        clock = 0.0
        for _ in range(500):
            clock += float(rng.exponential(0.1))
            value = float(rng.uniform(1.0, 100.0))
            events.append((clock, value))
            t.push(clock, value)
            live = [v for ts, v in events if ts > clock - 5.0]
            assert t.extremum() <= min(live)

    def test_slice_count_bounded(self):
        t = TimeIntervalExtremaTracker(duration=10.0, num_intervals=8, mode="max")
        for i in range(10_000):
            t.push(i * 0.01, float(i % 17))
        assert len(t) <= 9

    def test_decreasing_timestamps_rejected(self):
        t = TimeIntervalExtremaTracker(duration=10.0)
        t.push(5.0, 1.0)
        with pytest.raises(StreamError):
            t.push(4.0, 1.0)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            TimeIntervalExtremaTracker(0.0)
        with pytest.raises(ConfigurationError):
            TimeIntervalExtremaTracker(10.0, num_intervals=0)
        with pytest.raises(ConfigurationError):
            TimeIntervalExtremaTracker(10.0, mode="median")

    def test_worst_local_bounds_extremum(self):
        t = TimeIntervalExtremaTracker(duration=6.0, num_intervals=3, mode="min")
        for i, v in enumerate([5.0, 1.0, 9.0, 4.0, 2.0, 8.0]):
            t.push(float(i), v)
        assert t.extremum() <= t.worst_local()


class TestTimeSlidingEstimatorValidation:
    def test_rejects_tuple_window_query(self):
        with pytest.raises(ConfigurationError):
            TimeSlidingEstimator(
                CorrelatedQuery("count", "avg", window=10), duration=5.0
            )

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            TimeSlidingEstimator(AVG_Q, duration=0.0)
        with pytest.raises(ConfigurationError):
            TimeSlidingEstimator(AVG_Q, duration=5.0, num_buckets=3)
        with pytest.raises(ConfigurationError):
            TimeSlidingEstimator(AVG_Q, duration=5.0, strategy="other")
        with pytest.raises(ConfigurationError):
            TimeSlidingEstimator(AVG_Q, duration=5.0, k_std=0.0)
        with pytest.raises(ConfigurationError):
            TimeSlidingEstimator(AVG_Q, duration=5.0, rebuild_period=-1)

    def test_rejects_decreasing_time(self):
        est = TimeSlidingEstimator(AVG_Q, duration=5.0)
        est.update(3.0, Record(1.0))
        with pytest.raises(StreamError):
            est.update(2.0, Record(1.0))

    def test_rejects_non_finite(self):
        est = TimeSlidingEstimator(AVG_Q, duration=5.0)
        with pytest.raises(StreamError):
            est.update(math.nan, Record(1.0))
        with pytest.raises(StreamError):
            est.update(0.0, Record(math.inf))


class TestTimeSlidingAccuracy:
    def _poisson_stream(self, rng, n, rate=1.0):
        clock = 0.0
        events = []
        for _ in range(n):
            clock += float(rng.exponential(1.0 / rate))
            events.append((clock, Record(float(rng.lognormal(2.0, 0.8)), 1.0)))
        return events

    def test_min_tracks_brute_force(self, rng):
        events = self._poisson_stream(rng, 1200)
        duration = 50.0
        query = CorrelatedQuery("count", "min", epsilon=9.0)
        est = TimeSlidingEstimator(query, duration=duration, num_buckets=10)
        outputs = [est.update(t, r) for t, r in events]
        exact = brute_force_time_series(events, query, duration)
        rmse = float(np.sqrt(np.mean((np.array(outputs) - np.array(exact)) ** 2)))
        # Time-scoped extrema carry extra threshold staleness (the tracked
        # minimum lags by up to one time slice), so the tolerance is looser
        # than the count-window tests'.
        assert rmse < 0.45 * max(np.mean(exact), 1.0)

    def test_avg_tracks_brute_force(self, rng):
        events = self._poisson_stream(rng, 1200)
        duration = 80.0
        est = TimeSlidingEstimator(AVG_Q, duration=duration, num_buckets=10)
        outputs = [est.update(t, r) for t, r in events]
        exact = brute_force_time_series(events, AVG_Q, duration)
        rmse = float(np.sqrt(np.mean((np.array(outputs) - np.array(exact)) ** 2)))
        assert rmse < 0.25 * max(np.mean(exact), 1.0)

    def test_max_mode(self, rng):
        events = self._poisson_stream(rng, 800)
        duration = 40.0
        query = CorrelatedQuery("count", "max", epsilon=3.0)
        est = TimeSlidingEstimator(query, duration=duration, num_buckets=8)
        outputs = [est.update(t, r) for t, r in events]
        exact = brute_force_time_series(events, query, duration)
        rmse = float(np.sqrt(np.mean((np.array(outputs) - np.array(exact)) ** 2)))
        assert rmse < 0.4 * max(np.mean(exact), 1.0)

    def test_bursty_arrivals_expire_in_bulk(self, rng):
        # A silent gap longer than the window empties it entirely.
        query = AVG_Q
        est = TimeSlidingEstimator(query, duration=10.0, num_buckets=6)
        for i in range(100):
            est.update(float(i) * 0.1, Record(float(rng.uniform(1, 5))))
        out = est.update(1000.0, Record(3.0))
        assert est.live_count == 1
        assert out == 0.0  # single tuple: nothing strictly above the mean

    def test_live_count_matches_window(self, rng):
        events = self._poisson_stream(rng, 600)
        duration = 25.0
        est = TimeSlidingEstimator(AVG_Q, duration=duration, num_buckets=6)
        for i, (t, r) in enumerate(events):
            est.update(t, r)
            truth = sum(1 for ts, _ in events[: i + 1] if ts > t - duration)
            assert est.live_count == truth

    @given(
        gaps=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=80),
        values=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_crashes(self, gaps, values):
        est = TimeSlidingEstimator(MIN_Q, duration=7.5, num_buckets=5)
        clock = 0.0
        for gap in gaps:
            clock += gap
            x = values.draw(st.floats(0.1, 500.0))
            out = est.update(clock, Record(x))
            assert np.isfinite(out) and out >= 0.0
