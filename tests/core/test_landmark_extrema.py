"""Tests for the landmark extrema estimator (paper Section 3.1.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_series
from repro.core.landmark_extrema import LandmarkExtremaEstimator
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.streams.model import Record
from tests.conftest import make_records

MIN_Q = CorrelatedQuery("count", "min", epsilon=1.0)
MAX_Q = CorrelatedQuery("count", "max", epsilon=1.0)


class TestValidation:
    def test_requires_extrema_query(self):
        with pytest.raises(ConfigurationError):
            LandmarkExtremaEstimator(CorrelatedQuery("count", "avg"))

    def test_rejects_sliding(self):
        with pytest.raises(ConfigurationError):
            LandmarkExtremaEstimator(
                CorrelatedQuery("count", "min", epsilon=1.0, window=10)
            )

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            LandmarkExtremaEstimator(MIN_Q, num_buckets=1)
        with pytest.raises(ConfigurationError):
            LandmarkExtremaEstimator(MIN_Q, strategy="hybrid")
        with pytest.raises(ConfigurationError):
            LandmarkExtremaEstimator(MIN_Q, policy="magic")
        with pytest.raises(ConfigurationError):
            LandmarkExtremaEstimator(MIN_Q, swap_period=0)

    def test_accessors_before_data_raise(self):
        est = LandmarkExtremaEstimator(MIN_Q)
        with pytest.raises(StreamError):
            est.extremum
        with pytest.raises(StreamError):
            est.region

    def test_negative_values_rejected(self):
        est = LandmarkExtremaEstimator(MIN_Q)
        with pytest.raises(StreamError):
            est.update(Record(-1.0))


class TestWarmup:
    def test_exact_during_warmup(self):
        est = LandmarkExtremaEstimator(MIN_Q, num_buckets=10)
        q = MIN_Q
        records = make_records([10.0, 15.0, 30.0, 12.0])
        exact = exact_series(records, q)
        outputs = [est.update(r) for r in records]
        assert outputs == exact

    def test_histogram_built_after_m_in_region_tuples(self):
        est = LandmarkExtremaEstimator(MIN_Q, num_buckets=3)
        for x in [10.0, 11.0]:
            est.update(Record(x))
        assert est.histogram is None
        est.update(Record(12.0))
        assert est.histogram is not None
        assert est.histogram.num_buckets == 3

    def test_out_of_region_tuples_purged_during_warmup(self):
        est = LandmarkExtremaEstimator(MIN_Q, num_buckets=3)
        # eps=1: region of 10 is [10, 20]; 50 is outside and never counts.
        outputs = [est.update(Record(x)) for x in [10.0, 50.0, 11.0, 12.0]]
        assert outputs == [1.0, 1.0, 2.0, 3.0]


class TestRegionDynamics:
    def test_region_tracks_minimum(self):
        est = LandmarkExtremaEstimator(MIN_Q, num_buckets=2)
        for x in [10.0, 11.0, 4.0]:
            est.update(Record(x))
        assert est.extremum == 4.0
        assert est.region == (4.0, 8.0)

    def test_condition1_reinitialises(self):
        est = LandmarkExtremaEstimator(MIN_Q, num_buckets=2)
        for x in [10.0, 11.0]:
            est.update(Record(x))
        # New min 2: region [2,4] is disjoint from [10,20] -> reinit.
        out = est.update(Record(2.0))
        assert out == 1.0  # only the new minimum qualifies
        assert est.region == (2.0, 4.0)

    def test_condition2_truncates(self):
        est = LandmarkExtremaEstimator(MIN_Q, num_buckets=4)
        for x in [10.0, 12.0, 14.0, 16.0]:
            est.update(Record(x))
        # New min 9: region [9,18]; old tuples <= 18 all survive.
        out = est.update(Record(9.0))
        assert out == pytest.approx(5.0, abs=0.75)

    def test_values_above_region_discarded(self):
        est = LandmarkExtremaEstimator(MIN_Q, num_buckets=2)
        for x in [10.0, 11.0]:
            est.update(Record(x))
        out = est.update(Record(100.0))
        assert out == 2.0  # 100 can never qualify (min only falls)

    def test_max_mode_mirrors(self):
        est = LandmarkExtremaEstimator(MAX_Q, num_buckets=2)
        for x in [10.0, 11.0]:
            est.update(Record(x))
        assert est.extremum == 11.0
        lo, hi = est.region
        assert lo == pytest.approx(5.5) and hi == 11.0
        # New max 100: region [50, 100] disjoint -> reinit.
        assert est.update(Record(100.0)) == 1.0

    def test_monotone_region_boundary(self):
        est = LandmarkExtremaEstimator(MIN_Q, num_buckets=4)
        highs = []
        for x in [20.0, 18.0, 9.0, 13.0, 7.0, 30.0]:
            est.update(Record(x))
            highs.append(est.region[1])
        assert all(b <= a + 1e-12 for a, b in zip(highs, highs[1:]))


class TestAccuracy:
    @pytest.mark.parametrize("strategy", ["wholesale", "piecemeal"])
    @pytest.mark.parametrize("policy", ["uniform", "quantile"])
    def test_close_to_exact_on_random_stream(self, rng, strategy, policy):
        xs = rng.lognormal(mean=3.0, sigma=1.0, size=2000)
        records = make_records(xs)
        q = CorrelatedQuery("count", "min", epsilon=99.0)
        est = LandmarkExtremaEstimator(q, num_buckets=10, strategy=strategy, policy=policy)
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, q))
        rmse = float(np.sqrt(np.mean((outputs - exact) ** 2)))
        assert rmse < 0.05 * exact[-1]

    def test_sum_dependent(self, rng):
        xs = rng.uniform(1.0, 100.0, size=500)
        ys = rng.uniform(0.0, 10.0, size=500)
        records = make_records(xs, ys)
        q = CorrelatedQuery("sum", "min", epsilon=9.0)
        est = LandmarkExtremaEstimator(q, num_buckets=10)
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, q))
        assert outputs[-1] == pytest.approx(exact[-1], rel=0.1)

    def test_estimate_never_negative(self, rng):
        xs = rng.uniform(1.0, 100.0, size=300)
        q = CorrelatedQuery("count", "min", epsilon=0.2)
        est = LandmarkExtremaEstimator(q, num_buckets=5)
        for r in make_records(xs):
            assert est.update(r) >= 0.0

    @given(
        xs=st.lists(st.floats(0.5, 500.0), min_size=1, max_size=80),
        strategy=st.sampled_from(["wholesale", "piecemeal"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_crashes_and_tracks_total(self, xs, strategy):
        q = CorrelatedQuery("count", "min", epsilon=2.0)
        est = LandmarkExtremaEstimator(q, num_buckets=4, strategy=strategy)
        for r in make_records(xs):
            out = est.update(r)
            assert out >= 0.0
            assert out <= len(xs) + 1e-6
