"""Unit and property tests for the Fenwick tree and order-statistics index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, StreamError
from repro.structures.fenwick import FenwickTree, OrderStatisticsIndex


class TestFenwickTree:
    def test_empty_tree_sums_to_zero(self):
        tree = FenwickTree(8)
        assert tree.total() == 0.0
        assert tree.prefix_sum(0) == 0.0
        assert tree.prefix_sum(8) == 0.0

    def test_single_update_visible_in_prefix(self):
        tree = FenwickTree(10)
        tree.add(3, 5.0)
        assert tree.prefix_sum(3) == 0.0
        assert tree.prefix_sum(4) == 5.0
        assert tree.total() == 5.0

    def test_range_sum(self):
        tree = FenwickTree(6)
        for i in range(6):
            tree.add(i, float(i))
        assert tree.range_sum(2, 5) == 2.0 + 3.0 + 4.0

    def test_negative_deltas(self):
        tree = FenwickTree(4)
        tree.add(1, 3.0)
        tree.add(1, -3.0)
        assert tree.total() == 0.0

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            FenwickTree(0)

    def test_out_of_range_index_rejected(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.add(4, 1.0)
        with pytest.raises(IndexError):
            tree.prefix_sum(5)

    def test_reversed_range_rejected(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.range_sum(3, 1)

    @given(
        updates=st.lists(
            st.tuples(st.integers(0, 31), st.floats(-100, 100)), min_size=1, max_size=60
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_prefix_sums_match_numpy(self, updates):
        tree = FenwickTree(32)
        slots = np.zeros(32)
        for index, delta in updates:
            tree.add(index, delta)
            slots[index] += delta
        for count in range(33):
            assert tree.prefix_sum(count) == pytest.approx(slots[:count].sum(), abs=1e-6)


class TestOrderStatisticsIndex:
    def test_count_and_sum_below_threshold(self):
        index = OrderStatisticsIndex([1.0, 2.0, 3.0, 4.0])
        index.insert(1.0, 10.0)
        index.insert(3.0, 30.0)
        index.insert(4.0, 40.0)
        assert index.count_leq(3.0) == 2
        assert index.count_lt(3.0) == 1
        assert index.sum_leq(3.0) == 40.0
        assert index.count_gt(3.0) == 1
        assert index.sum_gt(3.0) == 40.0

    def test_duplicates_counted_individually(self):
        index = OrderStatisticsIndex([5.0, 7.0])
        for _ in range(3):
            index.insert(5.0, 1.0)
        assert index.count_leq(5.0) == 3
        assert index.count_lt(5.0) == 0

    def test_delete_reverses_insert(self):
        index = OrderStatisticsIndex([1.0, 2.0])
        index.insert(1.0, 9.0)
        index.insert(2.0, 4.0)
        index.delete(1.0, 9.0)
        assert len(index) == 1
        assert index.count_leq(2.0) == 1
        assert index.sum_total() == 4.0

    def test_unknown_value_rejected(self):
        index = OrderStatisticsIndex([1.0])
        with pytest.raises(StreamError):
            index.insert(2.0)

    def test_delete_from_empty_rejected(self):
        index = OrderStatisticsIndex([1.0])
        with pytest.raises(StreamError):
            index.delete(1.0)

    def test_empty_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            OrderStatisticsIndex([])

    def test_select_returns_kth_smallest(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        index = OrderStatisticsIndex(values)
        for v in values:
            index.insert(v)
        for k, expected in enumerate(sorted(values)):
            assert index.select(k) == expected

    def test_select_with_duplicates(self):
        index = OrderStatisticsIndex([1.0, 2.0])
        index.insert(1.0)
        index.insert(1.0)
        index.insert(2.0)
        assert index.select(0) == 1.0
        assert index.select(1) == 1.0
        assert index.select(2) == 2.0

    def test_select_out_of_range(self):
        index = OrderStatisticsIndex([1.0])
        index.insert(1.0)
        with pytest.raises(StreamError):
            index.select(1)

    def test_rank_mass_prefix(self):
        index = OrderStatisticsIndex([1.0, 2.0, 3.0])
        index.insert(1.0, 10.0)
        index.insert(2.0, 20.0)
        index.insert(3.0, 30.0)
        assert index.rank_mass(0) == (0.0, 0.0)
        assert index.rank_mass(2) == (2.0, 30.0)
        assert index.rank_mass(3) == (3.0, 60.0)

    def test_rank_mass_prorates_ties(self):
        index = OrderStatisticsIndex([1.0])
        index.insert(1.0, 10.0)
        index.insert(1.0, 10.0)
        count, weight = index.rank_mass(1)
        assert count == 1.0
        assert weight == pytest.approx(10.0)

    @given(
        values=st.lists(st.integers(0, 20), min_size=1, max_size=50),
        threshold=st.integers(0, 20),
    )
    @settings(max_examples=80, deadline=None)
    def test_counts_match_brute_force(self, values, threshold):
        index = OrderStatisticsIndex([float(v) for v in set(values)])
        for v in values:
            index.insert(float(v), float(v) * 2.0)
        assert index.count_leq(threshold) == sum(1 for v in values if v <= threshold)
        assert index.count_lt(threshold) == sum(1 for v in values if v < threshold)
        assert index.sum_leq(threshold) == pytest.approx(
            sum(2.0 * v for v in values if v <= threshold)
        )

    @given(values=st.lists(st.integers(0, 50), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_select_matches_sorted(self, values):
        index = OrderStatisticsIndex([float(v) for v in set(values)])
        for v in values:
            index.insert(float(v))
        ordered = sorted(values)
        for k in range(len(values)):
            assert index.select(k) == float(ordered[k])
