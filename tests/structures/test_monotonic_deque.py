"""Tests for exact sliding-window extrema via the monotonic deque."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, StreamError
from repro.structures.monotonic_deque import MonotonicDeque


class TestMonotonicDeque:
    def test_min_over_window(self):
        d = MonotonicDeque(window=3, mode="min")
        values = [5.0, 3.0, 7.0, 4.0, 8.0, 9.0]
        expected = [5.0, 3.0, 3.0, 3.0, 4.0, 4.0]
        for v, e in zip(values, expected):
            d.push(v)
            assert d.extremum() == e

    def test_max_over_window(self):
        d = MonotonicDeque(window=2, mode="max")
        values = [1.0, 5.0, 2.0, 0.5]
        expected = [1.0, 5.0, 5.0, 2.0]
        for v, e in zip(values, expected):
            d.push(v)
            assert d.extremum() == e

    def test_extremum_before_push_raises(self):
        d = MonotonicDeque(window=2)
        with pytest.raises(StreamError):
            d.extremum()

    def test_window_one_tracks_latest(self):
        d = MonotonicDeque(window=1, mode="min")
        for v in [3.0, 9.0, 1.0]:
            d.push(v)
            assert d.extremum() == v

    def test_candidate_count_bounded_by_window(self):
        d = MonotonicDeque(window=5, mode="min")
        for v in range(100, 0, -1):  # worst case: strictly decreasing
            d.push(float(v))
        assert len(d) <= 5

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MonotonicDeque(0)
        with pytest.raises(ConfigurationError):
            MonotonicDeque(3, mode="median")

    def test_duplicates(self):
        d = MonotonicDeque(window=3, mode="min")
        for v in [2.0, 2.0, 2.0, 5.0, 5.0, 5.0]:
            d.push(v)
        assert d.extremum() == 5.0

    @given(
        window=st.integers(1, 10),
        mode=st.sampled_from(["min", "max"]),
        values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=120),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, window, mode, values):
        d = MonotonicDeque(window=window, mode=mode)
        reference = min if mode == "min" else max
        for i, v in enumerate(values):
            d.push(v)
            scope = values[max(0, i - window + 1) : i + 1]
            assert d.extremum() == reference(scope)
