"""Tests for the P-squared streaming quantile estimator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, EmptyScopeError
from repro.structures.p2_quantile import P2Quantile


class TestP2Quantile:
    def test_invalid_p_rejected(self):
        for p in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                P2Quantile(p)

    def test_empty_value_raises(self):
        with pytest.raises(EmptyScopeError):
            P2Quantile(0.5).value()

    def test_small_samples_are_exact_order_statistics(self):
        q = P2Quantile(0.5)
        for v in [9.0, 1.0, 5.0]:
            q.push(v)
        assert q.value() == 5.0  # median of {1, 5, 9}

    def test_median_of_uniform_sequence(self):
        q = P2Quantile(0.5)
        for v in range(1, 1001):
            q.push(float(v))
        assert q.value() == pytest.approx(500.0, rel=0.05)

    def test_extreme_quantile(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=5000)
        q = P2Quantile(0.95)
        for v in values:
            q.push(float(v))
        assert q.value() == pytest.approx(np.quantile(values, 0.95), abs=0.15)

    def test_count_tracks_pushes(self):
        q = P2Quantile(0.25)
        for v in range(7):
            q.push(float(v))
        assert q.count == 7

    def test_monotone_marker_heights(self):
        rng = np.random.default_rng(3)
        q = P2Quantile(0.5)
        for v in rng.exponential(size=2000):
            q.push(float(v))
        heights = q._heights
        assert all(a <= b + 1e-9 for a, b in zip(heights, heights[1:]))

    @given(
        p=st.sampled_from([0.1, 0.25, 0.5, 0.75, 0.9]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_tracks_true_quantile_on_gaussians(self, p, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(loc=10.0, scale=2.0, size=3000)
        q = P2Quantile(p)
        for v in values:
            q.push(float(v))
        truth = float(np.quantile(values, p))
        assert q.value() == pytest.approx(truth, abs=0.4)
