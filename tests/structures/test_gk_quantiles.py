"""Tests for the Greenwald–Khanna quantile summary."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, EmptyScopeError
from repro.structures.gk_quantiles import GKQuantileSummary


class TestValidation:
    def test_eps_bounds(self):
        for eps in (0.0, 0.5, -0.1, 1.0):
            with pytest.raises(ConfigurationError):
                GKQuantileSummary(eps=eps)

    def test_empty_queries_raise(self):
        s = GKQuantileSummary(0.05)
        with pytest.raises(EmptyScopeError):
            s.quantile(0.5)
        with pytest.raises(EmptyScopeError):
            s.rank_bounds(1.0)

    def test_invalid_p(self):
        s = GKQuantileSummary(0.05)
        s.insert(1.0)
        with pytest.raises(ConfigurationError):
            s.quantile(1.5)

    def test_boundaries_validation(self):
        s = GKQuantileSummary(0.05)
        with pytest.raises(ConfigurationError):
            s.boundaries(0)
        assert s.boundaries(4) == []


class TestAccuracy:
    def test_quantiles_within_eps(self):
        eps = 0.02
        n = 5_000
        s = GKQuantileSummary(eps=eps)
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 1000.0, size=n)
        for v in values:
            s.insert(float(v))
        ordered = np.sort(values)
        for p in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            answer = s.quantile(p)
            rank = int(np.searchsorted(ordered, answer, side="right"))
            target = int(np.ceil(p * n))
            assert abs(rank - target) <= eps * n + 1

    def test_rank_bounds_contain_truth(self):
        eps = 0.05
        s = GKQuantileSummary(eps=eps)
        rng = np.random.default_rng(1)
        values = rng.normal(size=2000)
        for v in values:
            s.insert(float(v))
        for q in (-2.0, -0.5, 0.0, 0.5, 2.0):
            lower, upper = s.rank_bounds(q)
            truth = int((values <= q).sum())
            assert lower <= truth <= upper
            assert upper - lower <= 2 * eps * len(values) + 2

    def test_extremes_within_rank_slack(self):
        s = GKQuantileSummary(0.1)
        values = [5.0, 1.0, 9.0, 3.0]
        for v in values:
            s.insert(v)
        # p=1 hits the retained maximum exactly; p=0 may overshoot by the
        # permitted eps*n ranks (here 1 rank).
        assert s.quantile(1.0) == 9.0
        assert s.quantile(0.0) <= sorted(values)[1]

    def test_space_is_sublinear(self):
        s = GKQuantileSummary(eps=0.01)
        rng = np.random.default_rng(2)
        for v in rng.uniform(size=20_000):
            s.insert(float(v))
        # O((1/eps) log(eps n)) ~ a few hundred entries, not 20k.
        assert len(s) < 2_000

    def test_boundaries_are_monotone(self):
        s = GKQuantileSummary(0.02)
        rng = np.random.default_rng(3)
        for v in rng.exponential(size=3000):
            s.insert(float(v))
        edges = s.boundaries(10)
        assert len(edges) == 11
        assert all(b >= a for a, b in zip(edges, edges[1:]))

    @given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_rank_bounds_always_valid(self, values):
        s = GKQuantileSummary(eps=0.1)
        for v in values:
            s.insert(v)
        ordered = sorted(values)
        for q in (ordered[0], ordered[len(ordered) // 2], ordered[-1]):
            lower, upper = s.rank_bounds(q)
            truth = sum(1 for v in values if v <= q)
            assert lower <= truth <= upper


class TestStreamingEquidepthBaseline:
    def test_baseline_spectrum_ordering(self):
        """The focused methods beat both equidepth flavours, which beat
        equiwidth — the spectrum the paper's footnote 5 sketches.  (Whether
        streaming or offline equidepth is ahead varies with the stream
        prefix; the stable claim is their position between focused and
        equiwidth.)"""
        import numpy as np

        from repro.core.engine import build_estimator
        from repro.core.exact import exact_series
        from repro.core.query import CorrelatedQuery
        from repro.datasets.usage import usage_stream

        records = usage_stream(n=4000)
        q = CorrelatedQuery("count", "min", epsilon=99.0)
        exact = np.array(exact_series(records, q))

        def rmse(method):
            est = build_estimator(q, method, num_buckets=10, stream=records)
            out = np.array([est.update(r) for r in records])
            return float(np.sqrt(np.mean((out - exact) ** 2)))

        streaming = rmse("streaming-equidepth")
        offline = rmse("equidepth")
        focused = rmse("piecemeal-uniform")
        equiwidth = rmse("equiwidth")
        assert focused < streaming
        assert focused < offline
        assert streaming < equiwidth
        assert offline < equiwidth

    def test_streaming_equidepth_rejects_sliding(self):
        from repro.core.baselines import StreamingEquidepthEstimator
        from repro.core.query import CorrelatedQuery

        with pytest.raises(ConfigurationError):
            StreamingEquidepthEstimator(
                CorrelatedQuery("count", "avg", window=10), 10
            )

    def test_histogram_estimates_track_truth(self):
        from repro.histograms.streaming_equidepth import StreamingEquidepthHistogram

        rng = np.random.default_rng(4)
        values = rng.uniform(0.0, 100.0, size=3000)
        h = StreamingEquidepthHistogram(10, eps=0.01)
        for v in values:
            h.add(float(v), float(v))
        for t in (10.0, 50.0, 90.0):
            exact = float((values <= t).sum())
            assert h.estimate_leq(t).count == pytest.approx(exact, rel=0.2, abs=60)
        assert h.total().count == pytest.approx(3000.0)

    def test_histogram_remove_unsupported(self):
        from repro.exceptions import StreamError
        from repro.histograms.streaming_equidepth import StreamingEquidepthHistogram

        h = StreamingEquidepthHistogram(4)
        h.add(1.0)
        with pytest.raises(StreamError):
            h.remove(1.0)


class TestMerge:
    """The sketch-level merge contract (sharded ingestion builds on it)."""

    def _rank_of(self, ordered: np.ndarray, value: float) -> int:
        return int(np.searchsorted(ordered, value, side="right"))

    @pytest.mark.parametrize("ordering", ["random", "sorted", "reverse"])
    def test_merged_quantiles_within_summed_eps(self, ordering):
        rng = np.random.default_rng(17)
        values = rng.normal(0.0, 1.0, size=5000)
        if ordering == "sorted":
            values = np.sort(values)
        elif ordering == "reverse":
            values = np.sort(values)[::-1]
        a = GKQuantileSummary(eps=0.01)
        b = GKQuantileSummary(eps=0.02)
        for i, v in enumerate(values):
            (a if i % 2 == 0 else b).insert(float(v))
        merged = a.merge(b)
        assert merged.effective_eps == pytest.approx(0.03)
        ordered = np.sort(values)
        n = len(ordered)
        for p in (0.1, 0.25, 0.5, 0.75, 0.9):
            rank = self._rank_of(ordered, merged.quantile(p))
            assert abs(rank - p * n) <= 0.03 * n + 1

    def test_merge_preserves_space_bound(self):
        a = GKQuantileSummary(eps=0.02)
        b = GKQuantileSummary(eps=0.02)
        rng = np.random.default_rng(23)
        for v in rng.uniform(0, 1, size=4000):
            a.insert(float(v))
        for v in rng.uniform(0, 1, size=4000):
            b.insert(float(v))
        merged = a.merge(b)
        # Compression runs after the merge: the merged sketch must not be
        # the concatenation of both entry lists.
        assert len(merged) < len(a) + len(b)

    def test_rank_bounds_still_bracket_truth_after_merge(self):
        rng = np.random.default_rng(29)
        values = rng.uniform(0.0, 100.0, size=3000)
        a = GKQuantileSummary(eps=0.02)
        b = GKQuantileSummary(eps=0.02)
        for i, v in enumerate(values):
            (a if i % 3 == 0 else b).insert(float(v))
        merged = a.merge(b)
        ordered = np.sort(values)
        slop = int(np.ceil(merged.effective_eps * len(values))) + 1
        for t in (10.0, 50.0, 90.0):
            low, high = merged.rank_bounds(t)
            truth = self._rank_of(ordered, t)
            assert low - slop <= truth <= high + slop
