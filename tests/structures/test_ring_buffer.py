"""Tests for the fixed-capacity ring buffer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.structures.ring_buffer import RingBuffer


class TestRingBuffer:
    def test_push_below_capacity_evicts_nothing(self):
        buf = RingBuffer(3)
        assert buf.push("a") is None
        assert buf.push("b") is None
        assert len(buf) == 2
        assert not buf.is_full

    def test_push_at_capacity_evicts_oldest(self):
        buf = RingBuffer(2)
        buf.push(1)
        buf.push(2)
        assert buf.push(3) == 1
        assert buf.push(4) == 2
        assert list(buf) == [3, 4]

    def test_iteration_order_is_fifo(self):
        buf = RingBuffer(4)
        for i in range(7):
            buf.push(i)
        assert list(buf) == [3, 4, 5, 6]

    def test_oldest_and_newest(self):
        buf = RingBuffer(3)
        for i in range(5):
            buf.push(i)
        assert buf.oldest() == 2
        assert buf.newest() == 4

    def test_indexing(self):
        buf = RingBuffer(3)
        for i in range(5):
            buf.push(i)
        assert buf[0] == 2
        assert buf[2] == 4
        assert buf[-1] == 4
        with pytest.raises(IndexError):
            _ = buf[3]

    def test_empty_access_raises(self):
        buf = RingBuffer(2)
        with pytest.raises(IndexError):
            buf.oldest()
        with pytest.raises(IndexError):
            buf.newest()

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            RingBuffer(0)

    def test_capacity_one(self):
        buf = RingBuffer(1)
        assert buf.push("x") is None
        assert buf.push("y") == "x"
        assert list(buf) == ["y"]

    def test_none_is_storable(self):
        buf = RingBuffer(2)
        buf.push(None)
        buf.push(None)
        assert len(buf) == 2
        assert list(buf) == [None, None]

    @given(
        capacity=st.integers(1, 16),
        items=st.lists(st.integers(), min_size=0, max_size=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_list_tail(self, capacity, items):
        buf = RingBuffer(capacity)
        evictions = []
        for item in items:
            evicted = buf.push(item)
            if evicted is not None or (len(evictions) < len(items) - capacity):
                evictions.append(evicted)
        assert list(buf) == items[-capacity:]
        if len(items) > capacity:
            assert buf.oldest() == items[-capacity]
