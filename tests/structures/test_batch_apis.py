"""Batch entry points on the summary structures.

The columnar kernels lean on three structure-level batch APIs:
``RunningMoments.push_many``/``load``, ``RingBuffer.push_many``/``load``
and ``GKQuantileSummary.insert_many``.  Each must be an exact
transcription of its scalar loop (``insert_many``'s opt-in deferred
compression relaxes only the *structure*, never the rank guarantee).
"""

from __future__ import annotations

import bisect
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.structures.gk_quantiles import GKQuantileSummary
from repro.structures.ring_buffer import RingBuffer
from repro.structures.welford import RunningMoments


class TestRunningMomentsBatch:
    @given(values=st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_push_many_is_bit_identical_to_pushes(self, values):
        scalar = RunningMoments()
        for v in values:
            scalar.push(v)
        batched = RunningMoments()
        batched.push_many(values)
        assert batched.__dict__ == scalar.__dict__

    def test_push_many_accepts_numpy_and_keeps_python_floats(self):
        m = RunningMoments()
        m.push_many(np.asarray([1.0, 2.0, 3.5]))
        assert type(m.mean) is float
        assert type(m.minimum) is float
        assert m.count == 3

    def test_push_many_splits_match_one_batch(self):
        values = [random.uniform(-10, 10) for _ in range(100)]
        one = RunningMoments()
        one.push_many(values)
        split = RunningMoments()
        split.push_many(values[:37])
        split.push_many(values[37:])
        assert split.__dict__ == one.__dict__

    def test_load_overwrites_state_wholesale(self):
        m = RunningMoments()
        m.push_many([5.0, 7.0])
        m.load(3, 1.5, 0.25, -1.0, 4.0)
        assert (m.count, m.mean, m.minimum, m.maximum) == (3, 1.5, -1.0, 4.0)
        assert m.variance == pytest.approx(0.25 / 3)


class TestRingBufferBatch:
    @given(
        capacity=st.integers(1, 16),
        items=st.lists(st.integers(), min_size=0, max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_push_many_matches_push_loop(self, capacity, items):
        scalar = RingBuffer(capacity)
        evicted_scalar = [e for e in map(scalar.push, items) if e is not None]
        batched = RingBuffer(capacity)
        assert batched.push_many(items) == evicted_scalar
        assert list(batched) == list(scalar)

    def test_load_replaces_contents(self):
        buf = RingBuffer(4)
        buf.push_many([1, 2, 3, 4, 5])
        buf.load([9, 8])
        assert list(buf) == [9, 8]
        assert len(buf) == 2
        assert buf.oldest() == 9 and buf.newest() == 8
        assert buf.push(7) is None  # not full after a partial load

    def test_load_respects_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            RingBuffer(2).load([1, 2, 3])

    def test_load_then_push_evicts_in_order(self):
        buf = RingBuffer(3)
        buf.load([1, 2, 3])
        assert buf.push(4) == 1
        assert list(buf) == [2, 3, 4]


class TestGKInsertMany:
    @given(values=st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_periodic_is_bit_identical_to_inserts(self, values):
        scalar = GKQuantileSummary(eps=0.05)
        for v in values:
            scalar.insert(v)
        batched = GKQuantileSummary(eps=0.05)
        batched.insert_many(values)
        assert batched._entries == scalar._entries
        assert batched._count == scalar._count
        assert batched._since_compress == scalar._since_compress

    def test_accepts_numpy(self):
        a = GKQuantileSummary(eps=0.02)
        a.insert_many(np.linspace(0.0, 100.0, 500))
        b = GKQuantileSummary(eps=0.02)
        b.insert_many(list(np.linspace(0.0, 100.0, 500)))
        assert a._entries == b._entries

    def test_deferred_keeps_rank_guarantee(self):
        random.seed(7)
        values = [random.uniform(0.0, 1000.0) for _ in range(4000)]
        summary = GKQuantileSummary(eps=0.01)
        summary.insert_many(values, compress="deferred")
        assert summary.count == len(values)
        ordered = sorted(values)
        for p in (0.05, 0.25, 0.5, 0.75, 0.95):
            answer = summary.quantile(p)
            rank = bisect.bisect_right(ordered, answer)
            assert abs(rank - p * len(values)) <= 0.01 * len(values) + 1

    def test_deferred_compresses_at_end(self):
        values = [float(v) for v in range(2000)]
        summary = GKQuantileSummary(eps=0.05)
        summary.insert_many(values, compress="deferred")
        # One end-of-batch compress keeps space near the GK bound, far
        # below the uncompressed entry-per-value worst case.
        assert len(summary) < len(values) / 4

    def test_unknown_compress_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="periodic"):
            GKQuantileSummary(eps=0.05).insert_many([1.0], compress="later")
