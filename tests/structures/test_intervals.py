"""Tests for the interval-based sliding extrema tracker (paper Section 4.1.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, StreamError
from repro.structures.intervals import IntervalExtremaTracker


class TestIntervalExtremaTracker:
    def test_tracks_min_within_first_interval(self):
        t = IntervalExtremaTracker(window=100, num_intervals=10, mode="min")
        for v in [5.0, 3.0, 8.0]:
            t.push(v)
        assert t.extremum() == 3.0

    def test_interval_length_ceil(self):
        t = IntervalExtremaTracker(window=10, num_intervals=3)
        assert t.interval_length == 4  # ceil(10/3)

    def test_extremum_before_push_raises(self):
        t = IntervalExtremaTracker(window=10, num_intervals=2)
        with pytest.raises(StreamError):
            t.extremum()
        with pytest.raises(StreamError):
            t.worst_local()

    def test_expired_minimum_is_eventually_forgotten(self):
        # Window 20, 4 intervals of 5: a deep minimum in the first interval
        # must disappear once its interval rotates out.
        t = IntervalExtremaTracker(window=20, num_intervals=4, mode="min")
        t.push(1.0)
        for _ in range(30):
            t.push(10.0)
        assert t.extremum() == 10.0

    def test_min_never_above_true_window_min(self):
        # Retained intervals are a superset of the window, so the tracked
        # minimum is a lower bound on the true window minimum.
        values = [7.0, 3.0, 9.0, 4.0, 8.0, 2.0, 6.0, 5.0, 1.0, 9.0] * 5
        window = 10
        t = IntervalExtremaTracker(window=window, num_intervals=5, mode="min")
        for i, v in enumerate(values):
            t.push(v)
            true_min = min(values[max(0, i - window + 1) : i + 1])
            assert t.extremum() <= true_min

    def test_max_mode_symmetry(self):
        t = IntervalExtremaTracker(window=10, num_intervals=2, mode="max")
        for v in [1.0, 9.0, 2.0]:
            t.push(v)
        assert t.extremum() == 9.0
        assert t.worst_local() <= 9.0

    def test_worst_local_bounds_extremum(self):
        t = IntervalExtremaTracker(window=12, num_intervals=4, mode="min")
        for v in [5.0, 1.0, 8.0, 9.0, 2.0, 7.0, 3.0, 4.0, 6.0, 5.5, 2.5, 1.5]:
            t.push(v)
        assert t.extremum() <= t.worst_local()

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            IntervalExtremaTracker(0, 1)
        with pytest.raises(ConfigurationError):
            IntervalExtremaTracker(10, 0)
        with pytest.raises(ConfigurationError):
            IntervalExtremaTracker(10, 11)
        with pytest.raises(ConfigurationError):
            IntervalExtremaTracker(10, 2, mode="avg")

    def test_state_is_bounded(self):
        t = IntervalExtremaTracker(window=1000, num_intervals=8, mode="min")
        for v in range(5000):
            t.push(float(v))
        assert len(t) <= 9  # 8 completed + 1 partial

    @given(
        window=st.integers(2, 30),
        values=st.lists(st.floats(-1e4, 1e4), min_size=1, max_size=150),
    )
    @settings(max_examples=80, deadline=None)
    def test_min_is_conservative_bound(self, window, values):
        num_intervals = max(1, window // 3)
        t = IntervalExtremaTracker(window=window, num_intervals=num_intervals, mode="min")
        for i, v in enumerate(values):
            t.push(v)
            true_min = min(values[max(0, i - window + 1) : i + 1])
            # Conservative: never above the true window min, and never below
            # the min over the retained super-window (at most num_intervals
            # completed intervals plus the current partial one).
            span = (num_intervals + 1) * t.interval_length
            retained = values[max(0, i - span + 1) : i + 1]
            assert min(retained) <= t.extremum() <= true_min
