"""Tests for the Welford running-moments structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyScopeError, StreamError
from repro.structures.welford import RunningMoments


class TestRunningMoments:
    def test_mean_and_variance_simple(self):
        m = RunningMoments()
        for v in [2.0, 4.0, 6.0]:
            m.push(v)
        assert m.mean == pytest.approx(4.0)
        assert m.variance == pytest.approx(np.var([2.0, 4.0, 6.0]))
        assert m.std == pytest.approx(np.std([2.0, 4.0, 6.0]))

    def test_extrema(self):
        m = RunningMoments()
        for v in [3.0, -1.0, 7.0]:
            m.push(v)
        assert m.minimum == -1.0
        assert m.maximum == 7.0

    def test_standard_error(self):
        m = RunningMoments()
        for v in [1.0, 2.0, 3.0, 4.0]:
            m.push(v)
        assert m.standard_error == pytest.approx(m.std / 2.0)

    def test_empty_access_raises(self):
        m = RunningMoments()
        for attr in ("mean", "variance", "std", "minimum", "maximum", "standard_error"):
            with pytest.raises(EmptyScopeError):
                getattr(m, attr)

    def test_remove_reverses_push(self):
        m = RunningMoments()
        values = [5.0, 1.0, 8.0, 3.0]
        for v in values:
            m.push(v)
        m.remove(8.0)
        kept = [5.0, 1.0, 3.0]
        assert m.count == 3
        assert m.mean == pytest.approx(np.mean(kept))
        assert m.variance == pytest.approx(np.var(kept))

    def test_remove_last_element_resets(self):
        m = RunningMoments()
        m.push(7.0)
        m.remove(7.0)
        assert m.count == 0

    def test_remove_from_empty_raises(self):
        with pytest.raises(StreamError):
            RunningMoments().remove(1.0)

    def test_single_value_has_zero_variance(self):
        m = RunningMoments()
        m.push(42.0)
        assert m.variance == 0.0

    def test_merge(self):
        a, b = RunningMoments(), RunningMoments()
        left, right = [1.0, 2.0, 3.0], [10.0, 20.0]
        for v in left:
            a.push(v)
        for v in right:
            b.push(v)
        a.merge(b)
        combined = left + right
        assert a.count == 5
        assert a.mean == pytest.approx(np.mean(combined))
        assert a.variance == pytest.approx(np.var(combined))
        assert a.minimum == 1.0
        assert a.maximum == 20.0

    def test_merge_into_empty(self):
        a, b = RunningMoments(), RunningMoments()
        b.push(3.0)
        b.push(5.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(4.0)

    def test_merge_empty_is_noop(self):
        a = RunningMoments()
        a.push(1.0)
        a.merge(RunningMoments())
        assert a.count == 1

    @given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy(self, values):
        m = RunningMoments()
        for v in values:
            m.push(v)
        assert m.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert m.variance == pytest.approx(np.var(values), rel=1e-6, abs=1e-3)
        assert m.minimum == min(values)
        assert m.maximum == max(values)

    @given(
        values=st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=60),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sliding_push_remove_matches_numpy(self, values, data):
        window = data.draw(st.integers(1, len(values)))
        m = RunningMoments()
        for i, v in enumerate(values):
            m.push(v)
            if i >= window:
                m.remove(values[i - window])
            live = values[max(0, i - window + 1) : i + 1]
            assert m.count == len(live)
            assert m.mean == pytest.approx(np.mean(live), rel=1e-6, abs=1e-6)
            assert m.variance == pytest.approx(np.var(live), rel=1e-4, abs=1e-4)
