"""Shared test helpers: brute-force reference implementations.

Every estimator in the library is ultimately checked against these
O(n^2)-ish references on small streams; the library's own fast oracle is
itself validated against them first.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.query import CorrelatedQuery
from repro.streams.model import Record
from repro.structures.welford import RunningMoments


def brute_force_series(records: list[Record], query: CorrelatedQuery) -> list[float]:
    """Exact output sequence by literal re-evaluation at every step."""
    out = []
    for i in range(1, len(records) + 1):
        if query.is_sliding:
            scope = records[max(0, i - query.window) : i]
        else:
            scope = records[:i]
        xs = [r.x for r in scope]
        if query.independent == "min":
            independent = min(xs)
        elif query.independent == "max":
            independent = max(xs)
        elif query.is_sliding:
            # Match the oracle's exactly-rounded window mean (fsum is
            # order-independent): a value can sit exactly on the mean,
            # where a last-ulp difference flips the strict predicate.
            independent = math.fsum(xs) / len(xs)
        else:
            # Landmark scopes: same Welford recurrence (same push order) as
            # the oracle, bit-for-bit.
            moments = RunningMoments()
            for x in xs:
                moments.push(x)
            independent = moments.mean
        qualifying = [r for r in scope if query.qualifies(r.x, independent)]
        if query.dependent == "count":
            out.append(float(len(qualifying)))
        else:
            out.append(sum(r.y for r in qualifying))
    return out


def make_records(xs, ys=None) -> list[Record]:
    """Build records from value lists (y defaults to 1.0)."""
    if ys is None:
        return [Record(float(x)) for x in xs]
    return [Record(float(x), float(y)) for x, y in zip(xs, ys)]


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator for per-test randomness."""
    return np.random.default_rng(12345)
