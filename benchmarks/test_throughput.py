"""Cross-method streaming throughput on every query type.

The paper's premise is that multi-pass computation is infeasible on
streams; this bench quantifies the single-pass cost hierarchy on this
substrate (not the authors' testbed — shapes, not absolute numbers):

* memoryless heuristics are the floor (one comparison per tuple);
* focused histogram methods pay O(m) per tuple plus occasional
  reallocations;
* the "true" equidepth baseline pays an order-statistics query per step —
  the stand-in for its multi-pass privilege — and lands far behind,
  which is exactly why the paper calls it infeasible in practice.

Each benchmark round streams a fresh estimator over the same 2,000-tuple
USAGE slice.
"""

from __future__ import annotations

import pytest

from repro.core.engine import build_estimator
from repro.core.query import CorrelatedQuery
from repro.datasets.registry import load_dataset

SLICE = 2_000

QUERIES = {
    "landmark-min": CorrelatedQuery("count", "min", epsilon=99.0),
    "landmark-avg": CorrelatedQuery("count", "avg"),
    "sliding-min": CorrelatedQuery("count", "min", epsilon=99.0, window=500),
    "sliding-avg": CorrelatedQuery("count", "avg", window=500),
}

METHODS = (
    "piecemeal-uniform",
    "wholesale-uniform",
    "piecemeal-quantile",
    "wholesale-quantile",
    "equidepth",
    "equiwidth",
)


@pytest.fixture(scope="module")
def usage_slice():
    return load_dataset("USAGE", size=SLICE)


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_streaming_throughput(benchmark, usage_slice, query_name, method):
    """Time to stream the USAGE slice through one estimator."""
    query = QUERIES[query_name]

    def run() -> float:
        estimator = build_estimator(query, method, num_buckets=10, stream=usage_slice)
        out = 0.0
        for record in usage_slice:
            out = estimator.update(record)
        return out

    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = SLICE


@pytest.mark.parametrize("ingestion", ("single", "batched"))
def test_batched_vs_single_ingestion(benchmark, usage_slice, ingestion):
    """Batched ``update_many`` vs. the per-record ``update`` loop.

    Same landmark-min workload either way (the batch path is parity-tested
    to transcribe the scalar loop exactly); the delta is pure ingestion
    overhead — per-call attribute resolution and method dispatch that the
    kernel's hoisted batch loop resolves once per chunk.
    """
    query = QUERIES["landmark-min"]

    if ingestion == "single":

        def run() -> float:
            estimator = build_estimator(query, "piecemeal-uniform", num_buckets=10)
            out = 0.0
            for record in usage_slice:
                out = estimator.update(record)
            return out

    else:

        def run() -> float:
            estimator = build_estimator(query, "piecemeal-uniform", num_buckets=10)
            return estimator.update_many(usage_slice)[-1]

    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = SLICE
    benchmark.extra_info["ingestion"] = ingestion


@pytest.mark.parametrize("tracing", ("off", "on"))
def test_tracing_overhead(benchmark, usage_slice, tracing):
    """Streaming cost with the flight recorder off vs. fully on.

    ``off`` is the shipped default (``NULL_TRACER`` guard only); ``on``
    attaches a ``RecordingSink`` + ``Tracer`` so every tuple opens a
    ``kernel.answer`` span and every lifecycle edge exports.  The tighter
    floor-vs-disabled comparison lives in ``tools/bench_obs_overhead.py``;
    this pair tracks the enabled cost release over release.
    """
    from repro.obs.sink import RecordingSink
    from repro.obs.trace import Tracer

    query = QUERIES["landmark-min"]

    def run() -> float:
        kwargs = {}
        if tracing == "on":
            sink = RecordingSink()
            kwargs = {"sink": sink, "tracer": Tracer(sink)}
        estimator = build_estimator(
            query, "piecemeal-uniform", num_buckets=10, stream=usage_slice, **kwargs
        )
        out = 0.0
        for record in usage_slice:
            out = estimator.update(record)
        return out

    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = SLICE
    benchmark.extra_info["tracing"] = tracing


def test_exact_oracle_cost(benchmark, usage_slice):
    """The oracle's O(log n)/step cost — the bar single-pass methods avoid."""
    query = QUERIES["landmark-min"]

    def run() -> float:
        oracle = build_estimator(query, "exact", stream=usage_slice)
        out = 0.0
        for record in usage_slice:
            out = oracle.update(record)
        return out

    assert benchmark(run) >= 0.0
