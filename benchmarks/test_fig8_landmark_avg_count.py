"""Figure 8: Correlated COUNT with independent AVG over a landmark window.

USAGE and MULTIFRAC, 10 buckets.  Expected shape: the running-mean
heuristic is competitive (the mean converges early); focused methods
beat equidepth decisively on MULTIFRAC (paper: ~180 vs <30).

Regenerates the figure's accuracy tables into ``benchmarks/results/F8.txt``
and benchmarks per-method streaming throughput on the figure's workload.
"""

from __future__ import annotations

import pytest

from _harness import figure_methods, regenerate, throughput_case


@pytest.fixture(scope="module", autouse=True)
def regenerated_figure():
    """Replay the full workload once and persist the result tables."""
    return regenerate("F8")


@pytest.mark.parametrize("method", figure_methods("F8"))
def test_throughput(benchmark, method):
    """Per-method cost of streaming one workload slice of the first panel."""
    run, n_tuples = throughput_case("F8", 0, method)
    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = n_tuples
