"""Shared harness for the figure-regeneration benchmarks.

Each ``benchmarks/test_fig*.py`` module does two things:

1. **Regenerates its paper figure** — replays the figure's full workload
   through every applicable method, computes the paper's RMSE series, and
   writes the resulting tables to ``benchmarks/results/<ID>.txt`` (also
   echoed to stdout; run pytest with ``-s`` to see them live).  These
   tables are the source for EXPERIMENTS.md.
2. **Benchmarks streaming throughput** — measures per-tuple update cost of
   each method on that figure's workload via pytest-benchmark.

Figure regeneration happens once per module (a module-scoped fixture), so
``pytest benchmarks/ --benchmark-only`` both refreshes the result tables
and produces the timing table.

Set ``REPRO_BENCH_SIZE`` to an integer to truncate every stream (quick
smoke runs); by default each panel uses its canonical full size.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.engine import methods_for_query
from repro.eval.experiments import EXPERIMENTS, PanelResult, run_experiment
from repro.eval.report import (
    format_experiment_result,
    format_obs_table,
    format_rmse_series_table,
    format_tracking_table,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Number of tuples each throughput round processes.
THROUGHPUT_SLICE = 2_000


def bench_size() -> int | None:
    """Optional global stream-size override for quick runs."""
    raw = os.environ.get("REPRO_BENCH_SIZE")
    return int(raw) if raw else None


def regenerate(experiment_id: str, **kwargs: object) -> list[PanelResult]:
    """Run one figure's experiment at full size and persist its tables.

    Runs with instrumentation attached (``obs=True``), so each result file
    also records per-update latency percentiles and the estimator lifecycle
    event counts next to the accuracy tables.  Throughput benchmarks stay
    sink-free — see :func:`throughput_case`.
    """
    panels = run_experiment(experiment_id, size=bench_size(), obs=True, **kwargs)
    spec = EXPERIMENTS[experiment_id]

    sections = [f"{spec.figure}: {spec.description}", "=" * 70]
    for panel_result in panels:
        panel = panel_result.panel
        title = (
            f"[{panel.dataset}] {panel.query.describe()} "
            f"(m={spec.num_buckets}, order={panel.ordering})"
        )
        sections.append(format_experiment_result(title, panel_result.results))
        sections.append("")
        sections.append("RMSE_i series (the figure's error curves):")
        sections.append(format_rmse_series_table(panel_result.results, checkpoints=10))
        sections.append("")
        sections.append("Tracking the query answer (the figure's value curves):")
        sections.append(format_tracking_table(panel_result.results, checkpoints=10))
        sections.append("")
        sections.append("Instrumentation (per-update latency, lifecycle events):")
        sections.append(format_obs_table(panel_result.results))
        sections.append("")

    text = "\n".join(sections)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text)
    print(f"\n{text}")
    return panels


def throughput_case(experiment_id: str, panel_index: int, method: str):
    """Build a zero-argument callable that streams one slice through ``method``.

    Returns ``(runner, n_tuples)``; the runner constructs a fresh estimator
    and pushes the slice, so each benchmark round measures warm-up plus
    ``n_tuples`` updates.
    """
    from repro.core.engine import build_estimator

    spec = EXPERIMENTS[experiment_id]
    panel = spec.panels[panel_index]
    records = panel.load(size=THROUGHPUT_SLICE)

    def run() -> float:
        estimator = build_estimator(
            panel.query, method, num_buckets=spec.num_buckets, stream=records
        )
        out = 0.0
        for record in records:
            out = estimator.update(record)
        return out

    return run, len(records)


def figure_methods(experiment_id: str) -> list[str]:
    """The methods a figure compares (paper naming, presentation order)."""
    spec = EXPERIMENTS[experiment_id]
    return methods_for_query(spec.panels[0].query)
