"""Ablations over the design choices DESIGN.md calls out.

A module-scoped fixture replays a fixed workload across each knob's
settings and writes the accuracy tables to
``benchmarks/results/ablations.txt`` (so they are produced even under
``--benchmark-only``, like the figure regenerations).  The benchmark tests
then time a representative setting of each knob, putting the cost side of
every trade-off in the timing table.

Knobs (see DESIGN.md section 7):

* ``k_std``          — CLT focus half-width, AVG estimators;
* ``num_intervals``  — local-extrema tracker resolution, sliding extrema;
* ``drift_tolerance``— reallocation deadband, landmark AVG;
* ``rebuild_period`` — periodic window re-sort, sliding AVG;
* ``num_buckets``    — the overall space budget (the paper's Figure 7 axis).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from _harness import bench_size
from repro.core.engine import build_estimator
from repro.core.exact import exact_series
from repro.core.query import CorrelatedQuery
from repro.datasets.registry import load_dataset
from repro.eval.report import format_table

SIZE = 6_000
RESULTS_PATH = Path(__file__).parent / "results" / "ablations.txt"

LM_AVG = CorrelatedQuery("count", "avg")
SW_MIN = CorrelatedQuery("count", "min", epsilon=99.0, window=500)
SW_AVG = CorrelatedQuery("count", "avg", window=500)
LM_MIN = CorrelatedQuery("count", "min", epsilon=99.0)


def _rmse(records, query, method="piecemeal-uniform", num_buckets=10, **kwargs) -> float:
    estimator = build_estimator(
        query, method, num_buckets=num_buckets, stream=records, **kwargs
    )
    outputs = np.array([estimator.update(r) for r in records])
    exact = np.array(exact_series(records, query))
    return float(np.sqrt(np.mean((outputs - exact) ** 2)))


@pytest.fixture(scope="module")
def usage():
    return load_dataset("USAGE", size=bench_size() or SIZE)


@pytest.fixture(scope="module")
def multifrac():
    return load_dataset("MULTIFRAC", size=bench_size() or SIZE)


@pytest.fixture(scope="module", autouse=True)
def ablation_report(usage, multifrac):
    """Run every accuracy sweep once and persist the tables."""
    sections = []

    def section(title: str, settings: list[tuple[str, float]]) -> dict[str, float]:
        rows = [[label, f"{value:.3f}"] for label, value in settings]
        sections.append(f"{title}\n{format_table(['setting', 'RMSE'], rows)}\n")
        return dict(settings)

    k_sweep = section(
        "AVG focus half-width k_std (landmark AVG, USAGE)",
        [(f"k_std={k}", _rmse(usage, LM_AVG, k_std=k)) for k in (0.5, 1.0, 2.0, 3.0, 5.0)],
    )
    # Too narrow an interval must be visibly worse than the default.
    assert k_sweep["k_std=3.0"] < k_sweep["k_std=0.5"]

    section(
        "Sliding extrema tracker intervals (sliding MIN, MULTIFRAC)",
        [
            (f"num_intervals={n}", _rmse(multifrac, SW_MIN, num_intervals=n))
            for n in (3, 5, 10, 25, 50)
        ],
    )

    section(
        "Reallocation deadband drift_tolerance (landmark AVG, USAGE)",
        [
            (f"drift_tolerance={t}", _rmse(usage, LM_AVG, drift_tolerance=t))
            for t in (0.1, 0.3, 1.0, 3.0)
        ],
    )

    rebuild_sweep = section(
        "Periodic rebuild period (sliding AVG, MULTIFRAC)",
        [
            ("rebuild disabled" if p == 0 else f"rebuild every {p}",
             _rmse(multifrac, SW_AVG, rebuild_period=p))
            for p in (0, 250, 50)
        ],
    )
    assert rebuild_sweep["rebuild every 50"] <= rebuild_sweep["rebuild disabled"] * 1.5

    bucket_sweep = section(
        "Bucket budget m (landmark MIN, USAGE)",
        [(f"m={m}", _rmse(usage, LM_MIN, num_buckets=m)) for m in (5, 10, 20, 40)],
    )
    assert bucket_sweep["m=40"] <= bucket_sweep["m=5"] * 2.0

    text = "Ablation results\n================\n\n" + "\n".join(sections)
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(text)
    print(f"\n{text}")
    return sections


@pytest.mark.parametrize(
    "label, query, kwargs",
    [
        ("k_std", LM_AVG, {"k_std": 3.0}),
        ("num_intervals", SW_MIN, {"num_intervals": 10}),
        ("drift_tolerance", LM_AVG, {"drift_tolerance": 0.3}),
        ("rebuild_period", SW_AVG, {"rebuild_period": 50}),
        ("bucket_budget", LM_MIN, {}),
    ],
)
def test_knob_runtime(benchmark, usage, multifrac, label, query, kwargs):
    """Streaming cost of each knob's representative setting (2K tuples)."""
    records = (multifrac if query.is_sliding else usage)[:2000]
    result = benchmark(lambda: _rmse(records, query, **kwargs))
    assert result >= 0.0
