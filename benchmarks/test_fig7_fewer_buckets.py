"""Figure 7: COUNT/MIN landmark with a 5-bucket budget.

Half the bucket budget separates the focused methods; all of them
must still beat the traditional baselines.

Regenerates the figure's accuracy tables into ``benchmarks/results/F7.txt``
and benchmarks per-method streaming throughput on the figure's workload.
"""

from __future__ import annotations

import pytest

from _harness import figure_methods, regenerate, throughput_case


@pytest.fixture(scope="module", autouse=True)
def regenerated_figure():
    """Replay the full workload once and persist the result tables."""
    return regenerate("F7")


@pytest.mark.parametrize("method", figure_methods("F7"))
def test_throughput(benchmark, method):
    """Per-method cost of streaming one workload slice of the first panel."""
    run, n_tuples = throughput_case("F7", 0, method)
    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = n_tuples
