"""Figure 6: COUNT/MIN landmark with partially-sorted reverse arrival order.

Large values first, then a sudden drop in the running minimum.
Expected shape: equidepth error stays high after the drop while the
focused methods recover (reinitialisation on the disjoint region jump).

Regenerates the figure's accuracy tables into ``benchmarks/results/F6.txt``
and benchmarks per-method streaming throughput on the figure's workload.
"""

from __future__ import annotations

import pytest

from _harness import figure_methods, regenerate, throughput_case


@pytest.fixture(scope="module", autouse=True)
def regenerated_figure():
    """Replay the full workload once and persist the result tables."""
    return regenerate("F6")


@pytest.mark.parametrize("method", figure_methods("F6"))
def test_throughput(benchmark, method):
    """Per-method cost of streaming one workload slice of the first panel."""
    run, n_tuples = throughput_case("F6", 0, method)
    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = n_tuples
