"""Figure 5: Correlated SUM with independent MIN over a landmark window.

Same panels as Figure 4 with SUM(y) as the dependent aggregate.
Expected shape: an even larger focused-vs-equidepth gap.

Regenerates the figure's accuracy tables into ``benchmarks/results/F5.txt``
and benchmarks per-method streaming throughput on the figure's workload.
"""

from __future__ import annotations

import pytest

from _harness import figure_methods, regenerate, throughput_case


@pytest.fixture(scope="module", autouse=True)
def regenerated_figure():
    """Replay the full workload once and persist the result tables."""
    return regenerate("F5")


@pytest.mark.parametrize("method", figure_methods("F5"))
def test_throughput(benchmark, method):
    """Per-method cost of streaming one workload slice of the first panel."""
    run, n_tuples = throughput_case("F5", 0, method)
    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = n_tuples
