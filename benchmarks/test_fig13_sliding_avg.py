"""Figure 13: Correlated COUNT with independent AVG over a sliding window (w=500).

ZIPF and MGCTY.  Expected shape: focused methods competitive with
equidepth; uniform partitioning more robust than quantile; wholesale
methods correct themselves after regime changes.

Regenerates the figure's accuracy tables into ``benchmarks/results/F13.txt``
and benchmarks per-method streaming throughput on the figure's workload.
"""

from __future__ import annotations

import pytest

from _harness import figure_methods, regenerate, throughput_case


@pytest.fixture(scope="module", autouse=True)
def regenerated_figure():
    """Replay the full workload once and persist the result tables."""
    return regenerate("F13")


@pytest.mark.parametrize("method", figure_methods("F13"))
def test_throughput(benchmark, method):
    """Per-method cost of streaming one workload slice of the first panel."""
    run, n_tuples = throughput_case("F13", 0, method)
    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = n_tuples
