"""Figure 4: Correlated COUNT with independent MIN over a landmark window.

USAGE (eps=99) and ZIPF (eps=1000), 10 buckets.  Expected shape:
heuristics bracket and lose; equidepth beats equiwidth; every focused
method tracks the exact answer with small, stabilising RMSE.

Regenerates the figure's accuracy tables into ``benchmarks/results/F4.txt``
and benchmarks per-method streaming throughput on the figure's workload.
"""

from __future__ import annotations

import pytest

from _harness import figure_methods, regenerate, throughput_case


@pytest.fixture(scope="module", autouse=True)
def regenerated_figure():
    """Replay the full workload once and persist the result tables."""
    return regenerate("F4")


@pytest.mark.parametrize("method", figure_methods("F4"))
def test_throughput(benchmark, method):
    """Per-method cost of streaming one workload slice of the first panel."""
    run, n_tuples = throughput_case("F4", 0, method)
    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = n_tuples
