"""Figure 9: Correlated SUM with independent AVG over a landmark window.

Same panels as Figure 8 with SUM(y) dependent; the paper reports an
even larger divergence from equidepth.

Regenerates the figure's accuracy tables into ``benchmarks/results/F9.txt``
and benchmarks per-method streaming throughput on the figure's workload.
"""

from __future__ import annotations

import pytest

from _harness import figure_methods, regenerate, throughput_case


@pytest.fixture(scope="module", autouse=True)
def regenerated_figure():
    """Replay the full workload once and persist the result tables."""
    return regenerate("F9")


@pytest.mark.parametrize("method", figure_methods("F9"))
def test_throughput(benchmark, method):
    """Per-method cost of streaming one workload slice of the first panel."""
    run, n_tuples = throughput_case("F9", 0, method)
    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = n_tuples
