"""Figure 10: COUNT/AVG landmark with partially-sorted reverse arrival order.

The mean drops sharply mid-stream, breaking the CLT convergence
assumption.  Expected shape: all methods degrade; true equidepth wins;
focused methods still clearly beat equiwidth.

Regenerates the figure's accuracy tables into ``benchmarks/results/F10.txt``
and benchmarks per-method streaming throughput on the figure's workload.
"""

from __future__ import annotations

import pytest

from _harness import figure_methods, regenerate, throughput_case


@pytest.fixture(scope="module", autouse=True)
def regenerated_figure():
    """Replay the full workload once and persist the result tables."""
    return regenerate("F10")


@pytest.mark.parametrize("method", figure_methods("F10"))
def test_throughput(benchmark, method):
    """Per-method cost of streaming one workload slice of the first panel."""
    run, n_tuples = throughput_case("F10", 0, method)
    result = benchmark(run)
    assert result >= 0.0
    benchmark.extra_info["tuples_per_round"] = n_tuples
