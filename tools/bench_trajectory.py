#!/usr/bin/env python
"""Fold every ``benchmarks/BENCH_*.json`` into one trajectory file.

Each committed ``BENCH_*`` file is a point-in-time performance claim
(batched-ingestion speedup, observability overhead, ...).  This tool
collects them into ``benchmarks/TRAJECTORY.json`` — one entry per
benchmark with its headline numbers — so a reviewer (or a CI artifact
diff) can read the repo's performance story in one place instead of
opening each report.

Usage::

    PYTHONPATH=src python tools/bench_trajectory.py [--output PATH]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO / "benchmarks"
OUTPUT = BENCH_DIR / "TRAJECTORY.json"


def _headline(report: dict) -> dict[str, object]:
    """Pull the one-line takeaway out of a benchmark report.

    Known shapes get a tailored summary; anything else falls back to the
    report's top-level scalars so new benchmarks surface without edits here.
    """
    if "family" in report:
        return {
            "family": report["family"],
            "speedup": report.get("speedup"),
            "speedup_batch_all": report.get("speedup_batch_all"),
            "tuples_per_second": report.get("tuples_per_second"),
            "meets_10x": report.get("meets_10x"),
            "cpu_count": report.get("machine", {}).get("cpu_count"),
        }
    if "speedup" in report:
        return {"speedup": report["speedup"]}
    if "distinct_keys" in report:
        return {
            "distinct_keys": report["distinct_keys"],
            "tuples_per_second": report.get("tuples_per_second"),
            "promoted": report.get("bank", {}).get("promoted"),
            "bound_violations": report.get("validation", {}).get(
                "bound_violations"
            ),
            "sound": report.get("sound"),
            "cpu_count": report.get("machine", {}).get("cpu_count"),
        }
    if "curve" in report:
        return {
            "speedup_at_4": report.get("speedup_at_4"),
            "meets_criterion": report.get("meets_criterion"),
            "cpu_count": report.get("machine", {}).get("cpu_count"),
            "curve": {
                str(point["workers"]): round(point["speedup_vs_baseline"], 3)
                for point in report["curve"]
            },
        }
    if "transports" in report:
        return {
            "shm_vs_queue_at_4": report.get("shm_vs_queue_at_4"),
            "meets_criterion": report.get("meets_criterion"),
            "cpu_count": report.get("machine", {}).get("cpu_count"),
            "feed_tuples_per_second": {
                name: {
                    str(point["workers"]): round(point["feed_tuples_per_second"])
                    for point in points
                }
                for name, points in report["transports"].items()
            },
        }
    if "workloads" in report:
        return {
            "within_budget": report.get("within_budget"),
            "overhead": {
                name: workload.get("overhead")
                for name, workload in report["workloads"].items()
            },
        }
    return {
        key: value
        for key, value in report.items()
        if isinstance(value, (int, float, bool))
    }


def collect(bench_dir: Path = BENCH_DIR) -> dict[str, object]:
    entries = []
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        report = json.loads(path.read_text())
        entries.append(
            {
                "file": path.name,
                "benchmark": report.get("benchmark", path.stem),
                "description": report.get("description", ""),
                "acceptance_criterion": report.get("acceptance_criterion"),
                "headline": _headline(report),
            }
        )
    return {
        "description": (
            "Aggregated headline numbers from every committed BENCH_*.json; "
            "regenerate with tools/bench_trajectory.py after updating any of "
            "them."
        ),
        "benchmarks": entries,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)

    trajectory = collect()
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    names = ", ".join(e["file"] for e in trajectory["benchmarks"])
    print(f"wrote {args.output} ({len(trajectory['benchmarks'])} benchmarks: {names})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
