#!/usr/bin/env python
"""Columnar-kernel throughput: one report per estimator family.

For each of the five estimator families, the same stream is replayed
three ways and timed with the shared interleaved-block harness
(:mod:`benchlib`):

* ``scalar``    — the per-tuple ``update`` loop, one estimate per tuple;
* ``batch_all`` — ``update_many(..., collect="all")``: the batched entry
                  with per-record outputs (what the tracker replays);
* ``columnar``  — ``update_columns(..., collect="none")``: flat float64
                  columns through the vectorised family kernel, no
                  per-record estimates (the sharded-worker hot path).

All three produce bit-identical estimator state (pinned by
``tests/core/test_columnar_parity.py``); this benchmark records what
that equivalence costs or saves.  The headline ``speedup`` is
scalar-median over columnar-median.  Two families are honest
exceptions, recorded as such: ``sliding_avg``'s reallocation test fires
nearly every record, so its columnar path is the hoisted scalar loop
(expected ~1x), and ``time_sliding``'s variable-length expiry drain
rules out vectorisation, so ``update_columns_timed`` is columnar in
transport only.

The ``landmark_extrema`` report also gates the removal of the old
hand-inlined ``_update_batch`` override: the shared kernel path must
meet or beat the 4.77x that override measured before it was deleted.

Writes ``benchmarks/BENCH_columnar_<family>.json`` per family.

Usage::

    PYTHONPATH=src python tools/bench_columnar.py [--rounds N] [--size N]
        [--families a,b,...]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import benchlib  # noqa: E402
from repro.core.engine import build_estimator  # noqa: E402
from repro.core.query import CorrelatedQuery  # noqa: E402
from repro.core.time_sliding import TimeSlidingEstimator  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.streams.columns import records_to_columns  # noqa: E402

REPO = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO / "benchmarks"

METHOD = "piecemeal-uniform"
NUM_BUCKETS = 10
WINDOW = 2_000

#: The speedup the deleted hand-inlined landmark-extrema ``_update_batch``
#: measured (benchmarks/BENCH_batched_ingestion.json); the shared columnar
#: kernel must not regress past it.
INLINED_BATCH_SPEEDUP = 4.77

FAMILIES = {
    "landmark_extrema": {
        "query": CorrelatedQuery("count", "min", epsilon=99.0),
        "vectorized": True,
        "note": "fully vectorised steady-state kernel",
    },
    "landmark_avg": {
        "query": CorrelatedQuery("count", "avg"),
        "vectorized": True,
        "note": "vectorised CLT target over a python Welford trace",
    },
    "sliding_extrema": {
        "query": CorrelatedQuery("count", "min", epsilon=99.0, window=WINDOW),
        "vectorized": True,
        "note": "vectorised segments between data-driven boundary steps",
    },
    "sliding_avg": {
        "query": CorrelatedQuery("count", "avg", window=WINDOW),
        "vectorized": False,
        "note": (
            "reallocation test fires nearly every record; columnar path is "
            "the hoisted scalar loop (expected ~1x, recorded honestly)"
        ),
    },
    "time_sliding": {
        "query": CorrelatedQuery("count", "min", epsilon=99.0),
        "vectorized": False,
        "note": (
            "variable-length expiry drain; update_columns_timed is columnar "
            "transport over the scalar step (expected ~1x, recorded honestly)"
        ),
    },
}


def _timed_workloads(query, records):
    """The three variants for a count/tuple-window family."""
    xs, ys = records_to_columns(records)

    def scalar():
        estimator = build_estimator(query, METHOD, num_buckets=NUM_BUCKETS)
        update = estimator.update

        def run():
            for record in records:
                update(record)

        return run

    def batch_all():
        estimator = build_estimator(query, METHOD, num_buckets=NUM_BUCKETS)
        return lambda: estimator.update_many(records, collect="all")

    def columnar():
        estimator = build_estimator(query, METHOD, num_buckets=NUM_BUCKETS)
        return lambda: estimator.update_columns(xs, ys, collect="none")

    return {"scalar": scalar, "batch_all": batch_all, "columnar": columnar}


def _timed_workloads_timed(query, records):
    """The three variants for the time-window family (unit spacing)."""
    xs, ys = records_to_columns(records)
    times = [float(i) for i in range(1, len(records) + 1)]
    timed = list(zip(times, records))
    duration = float(WINDOW)

    def scalar():
        estimator = TimeSlidingEstimator(query, duration, num_buckets=NUM_BUCKETS)
        update = estimator.update

        def run():
            for time_value, record in timed:
                update(time_value, record)

        return run

    def batch_all():
        estimator = TimeSlidingEstimator(query, duration, num_buckets=NUM_BUCKETS)
        return lambda: estimator.update_many_timed(timed, collect="all")

    def columnar():
        estimator = TimeSlidingEstimator(query, duration, num_buckets=NUM_BUCKETS)
        return lambda: estimator.update_columns_timed(times, xs, ys, collect="none")

    return {"scalar": scalar, "batch_all": batch_all, "columnar": columnar}


def bench_family(family: str, size: int, rounds: int) -> dict:
    spec = FAMILIES[family]
    query = spec["query"]
    records = load_dataset("USAGE", size=size)
    if family == "time_sliding":
        workloads = _timed_workloads_timed(query, records)
    else:
        workloads = _timed_workloads(query, records)

    blocks = {
        name: (lambda k, w=workload: [benchlib.one_round(w) for _ in range(k)])
        for name, workload in workloads.items()
    }
    samples = benchlib.time_variants(blocks, rounds)
    results = {
        name: benchlib.summarize(times, len(records))
        for name, times in samples.items()
    }

    speedup = results["scalar"]["median"] / results["columnar"]["median"]
    speedup_batch_all = results["scalar"]["median"] / results["batch_all"]["median"]
    report = {
        "benchmark": "tools/bench_columnar.py",
        "family": family,
        "description": (
            f"Columnar ingestion throughput for the {family} family on "
            f"{len(records)} USAGE tuples ({query.describe()}, {METHOD}, "
            f"m={NUM_BUCKETS}): scalar update loop vs update_many(collect="
            f"'all') vs update_columns(collect='none').  {spec['note']}."
        ),
        "command": (
            f"PYTHONPATH=src python tools/bench_columnar.py --families {family} "
            f"--size {size} --rounds {rounds}"
        ),
        "acceptance_criterion": (
            ">= 10x scalar throughput on at least 3 of the 5 families "
            "(per-family meets_10x records this family's contribution); "
            "non-vectorised families record their honest ~1x"
        ),
        "machine": benchlib.machine_info(),
        "workload": {
            "query": query.describe(),
            "dataset": "USAGE",
            "tuples": len(records),
            "method": METHOD,
            "num_buckets": NUM_BUCKETS,
            "vectorized_kernel": spec["vectorized"],
        },
        "results_seconds": results,
        "speedup": round(speedup, 2),
        "speedup_batch_all": round(speedup_batch_all, 2),
        "tuples_per_second": results["columnar"]["tuples_per_second"],
        "meets_10x": speedup >= 10.0,
    }
    if family == "landmark_extrema":
        report["replaces_inlined_update_batch"] = {
            "old_speedup": INLINED_BATCH_SPEEDUP,
            "new_speedup": round(speedup, 2),
            "ok": speedup >= INLINED_BATCH_SPEEDUP,
        }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--size", type=int, default=20_000)
    parser.add_argument(
        "--families",
        default=",".join(FAMILIES),
        help="comma-separated subset of: " + ", ".join(FAMILIES),
    )
    parser.add_argument("--output-dir", type=Path, default=BENCH_DIR)
    args = parser.parse_args(argv)

    chosen = [f.strip() for f in args.families.split(",") if f.strip()]
    unknown = [f for f in chosen if f not in FAMILIES]
    if unknown:
        parser.error(f"unknown families: {unknown}; choose from {list(FAMILIES)}")

    vectorized_ok = 0
    failed_gate = False
    for family in chosen:
        report = bench_family(family, args.size, args.rounds)
        path = args.output_dir / f"BENCH_columnar_{family}.json"
        path.write_text(json.dumps(report, indent=2) + "\n")
        if report["meets_10x"]:
            vectorized_ok += 1
        gate = report.get("replaces_inlined_update_batch")
        if gate is not None and not gate["ok"]:
            failed_gate = True
        print(
            f"{family:>17}: columnar {report['speedup']:.1f}x scalar "
            f"({report['tuples_per_second']:,.0f} tuples/s), "
            f"batch_all {report['speedup_batch_all']:.1f}x"
            + (" [10x: ok]" if report["meets_10x"] else "")
        )
        print(f"wrote {path}")
    if failed_gate:
        print(
            "FAIL: columnar landmark_extrema slower than the deleted "
            f"hand-inlined _update_batch ({INLINED_BATCH_SPEEDUP}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
