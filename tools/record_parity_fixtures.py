"""Record golden parity fixtures for the focused-estimator kernel.

Run from the repository root::

    PYTHONPATH=src python tools/record_parity_fixtures.py

The script replays a fixed-seed USAGE slice through every focused
estimator configuration (all four method names on all four query shapes,
plus the time-sliding estimator on both independents) with a recording
sink attached, and writes per-step output series, final ``obs_state()``
gauges, and lifecycle-event counters to
``tests/core/fixtures/kernel_parity.json``.

``tests/core/test_kernel_parity.py`` replays the same configurations and
asserts byte-identical results, so any refactor of the estimator
lifecycle (bucket arithmetic, reallocation scheduling, obs emission
sites) that changes observable behaviour — even in the last float bit —
fails loudly.  Regenerate the fixture only when a behaviour change is
*intended*, and say so in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

FIXTURE_PATH = Path(__file__).resolve().parent.parent / (
    "tests/core/fixtures/kernel_parity.json"
)

STREAM_NAME = "USAGE"
STREAM_SIZE = 600
WINDOW = 200
DURATION = 250.0  # time-sliding: timestamps advance 0.5 per tuple

FOCUSED_METHODS = (
    "wholesale-uniform",
    "wholesale-quantile",
    "piecemeal-uniform",
    "piecemeal-quantile",
)

#: Query shapes exercising all four count-window estimator classes.
QUERY_SHAPES = {
    "landmark-min": dict(dependent="count", independent="min", epsilon=99.0),
    "landmark-avg": dict(dependent="sum", independent="avg"),
    "sliding-min": dict(
        dependent="count", independent="min", epsilon=99.0, window=WINDOW
    ),
    "sliding-avg": dict(dependent="count", independent="avg", window=WINDOW),
}

#: Time-sliding shapes (window=None; the duration replaces it).
TIME_SHAPES = {
    "time-min": dict(dependent="count", independent="min", epsilon=99.0),
    "time-avg": dict(dependent="sum", independent="avg"),
}


def _event_counters(sink) -> dict[str, float]:
    """The ``events.*`` counters — one per lifecycle event name."""
    return {
        name: value
        for name, value in sink.registry.as_dict().items()
        if name.startswith("events.")
    }


def record_fixture() -> dict:
    from repro.core.engine import build_estimator
    from repro.core.query import CorrelatedQuery
    from repro.core.time_sliding import TimeSlidingEstimator
    from repro.datasets.registry import load_dataset
    from repro.obs.sink import RecordingSink

    records = load_dataset(STREAM_NAME, size=STREAM_SIZE)
    runs = {}

    for method in FOCUSED_METHODS:
        strategy, policy = method.split("-")
        for shape_name, shape in QUERY_SHAPES.items():
            query = CorrelatedQuery(**shape)
            sink = RecordingSink()
            estimator = build_estimator(query, method, num_buckets=10, sink=sink)
            outputs = [estimator.update(r) for r in records]
            runs[f"{method}/{shape_name}"] = {
                "outputs": outputs,
                "obs_state": estimator.obs_state(),
                "events": _event_counters(sink),
            }
        for shape_name, shape in TIME_SHAPES.items():
            query = CorrelatedQuery(**shape)
            sink = RecordingSink()
            estimator = TimeSlidingEstimator(
                query,
                duration=DURATION,
                num_buckets=10,
                strategy=strategy,
                policy=policy,
                sink=sink,
            )
            outputs = [
                estimator.update(time=i * 0.5, record=r)
                for i, r in enumerate(records)
            ]
            runs[f"{method}/{shape_name}"] = {
                "outputs": outputs,
                "obs_state": estimator.obs_state(),
                "events": _event_counters(sink),
            }

    return {
        "stream": {"dataset": STREAM_NAME, "size": STREAM_SIZE},
        "window": WINDOW,
        "duration": DURATION,
        "num_buckets": 10,
        "runs": runs,
    }


def main() -> None:
    fixture = record_fixture()
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(fixture, indent=1, sort_keys=True) + "\n")
    n_runs = len(fixture["runs"])
    print(f"wrote {FIXTURE_PATH} ({n_runs} runs x {STREAM_SIZE} steps)")


if __name__ == "__main__":
    main()
