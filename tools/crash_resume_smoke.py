#!/usr/bin/env python
"""CI smoke: kill -9 a checkpointing CLI run, resume it, diff the output.

Drives the public surface only (``python -m repro run``): one uninterrupted
checkpointed run for reference, one run killed with SIGKILL as soon as its
first generation lands, one ``--resume-from`` run whose stdout must match
the reference byte for byte.  Exit status 0 = recovered identically,
1 = any divergence (with a diff-style report on stderr).

Usage: python tools/crash_resume_smoke.py [--size 4000] [--every 250]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _base_argv(size: int, every: int) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "run",
        "F7",
        "--size",
        str(size),
        "--methods",
        "piecemeal-uniform",
        "--checkpoint-every",
        str(every),
    ]


def main() -> int:
    """Run the crash/resume smoke and return a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=4000)
    parser.add_argument("--every", type=int, default=250)
    args = parser.parse_args()
    base = _base_argv(args.size, args.every)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        baseline_dir = Path(tmp) / "baseline"
        crash_dir = Path(tmp) / "crash"

        print("smoke: reference run ...", flush=True)
        reference = subprocess.run(
            [*base, "--checkpoint-dir", str(baseline_dir)],
            capture_output=True,
            text=True,
            env=_env(),
            timeout=300,
        )
        if reference.returncode != 0:
            print(reference.stderr, file=sys.stderr)
            return 1

        print("smoke: victim run, SIGKILL after first checkpoint ...", flush=True)
        victim = subprocess.Popen(
            [*base, "--checkpoint-dir", str(crash_dir)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=_env(),
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if list(crash_dir.glob("panel0/ckpt-*.ckpt")) or victim.poll() is not None:
                break
            time.sleep(0.01)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)

        generations = sorted(p.name for p in crash_dir.glob("panel0/ckpt-*.ckpt"))
        if not generations:
            print("smoke: FAIL — no checkpoint written before exit", file=sys.stderr)
            return 1
        print(f"smoke: killed with {len(generations)} generation(s) on disk", flush=True)

        print("smoke: resuming ...", flush=True)
        resumed = subprocess.run(
            [*base, "--resume-from", str(crash_dir)],
            capture_output=True,
            text=True,
            env=_env(),
            timeout=300,
        )
        if resumed.returncode != 0:
            print(resumed.stderr, file=sys.stderr)
            return 1

        if resumed.stdout != reference.stdout:
            print("smoke: FAIL — resumed output differs from reference", file=sys.stderr)
            for ref_line, got_line in zip(
                reference.stdout.splitlines(), resumed.stdout.splitlines()
            ):
                if ref_line != got_line:
                    print(f"  - {ref_line}\n  + {got_line}", file=sys.stderr)
            return 1

    print("smoke: OK — resumed run matches the uninterrupted run byte for byte")
    return 0


if __name__ == "__main__":
    sys.exit(main())
