#!/usr/bin/env python
"""Guard the focused-estimator kernel against quiet re-forking.

The shared lifecycle lives in ``repro/core/focused.py``; the five estimator
modules customise it ONLY through the policy hooks the kernel declares.
This lint keeps that boundary honest with two grep-level rules:

1. Any module under ``src/repro/core/`` that defines a lifecycle hook
   (``_route_add``, ``_should_reallocate``, ``_target_interval``,
   ``_warmup_step``, ...) must import ``repro.core.focused`` — i.e. it must
   be overriding the kernel, not reimplementing the lifecycle from scratch.
2. A kernel-subclass module (one that imports ``repro.core.focused``) may
   not define the kernel-owned machinery (``_init_kernel``,
   ``_build_histogram``, ``obs_state``, ``estimate_bounds``,
   ``update_many``, ``_after_add``): those are the shared spine, and a
   private copy would drift from the parity fixtures.  Non-kernel
   algorithms (baselines, heuristics, the oracle) implement the
   ``ObservableAlgorithm``/batch protocols directly and are exempt.

Runs on the source text (no imports), so it works in any environment.
Exit status 0 = clean, 1 = violations (listed one per line).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CORE = Path(__file__).resolve().parent.parent / "src" / "repro" / "core"

#: Methods a kernel subclass legitimately overrides.  Defining any of these
#: without importing the kernel means a module re-grew its own lifecycle.
HOOK_MARKERS = (
    "_route_add",
    "_route_remove",
    "_should_reallocate",
    "_target_interval",
    "_reallocate",
    "_warmup_step",
    "_quantile_edges",
    "_seed_histogram",
    "_steady_columns",
    "_columns_supported",
)

#: Kernel-owned machinery: no kernel subclass may define these.
KERNEL_OWNED = (
    "_init_kernel",
    "_build_histogram",
    "_rebuild_from_window",
    "_partition",
    "obs_state",
    "estimate_bounds",
    "update_many",
    "update_columns",
    "_after_add",
)

#: Modules with no stake in the focused lifecycle (baselines, oracle,
#: memoryless heuristics, query/engine plumbing) are exempt from rule 1 —
#: they never defined hooks to begin with, and the marker list would only
#: misfire on a coincidental name.
IMPORT_RE = re.compile(
    r"^\s*(?:from\s+repro\.core\.focused\s+import|import\s+repro\.core\.focused)", re.M
)


def check(core_dir: Path = CORE) -> list[str]:
    """Return one human-readable line per violation (empty = clean)."""
    problems: list[str] = []
    for path in sorted(core_dir.glob("*.py")):
        if path.name == "focused.py":
            continue
        text = path.read_text()
        rel = path.relative_to(core_dir.parent.parent.parent)
        imports_kernel = bool(IMPORT_RE.search(text))
        defined_hooks = [
            name for name in HOOK_MARKERS if re.search(rf"^\s*def {name}\(", text, re.M)
        ]
        if defined_hooks and not imports_kernel:
            problems.append(
                f"{rel}: defines lifecycle hook(s) {', '.join(defined_hooks)} "
                "without importing repro.core.focused — subclass the kernel "
                "instead of re-growing the lifecycle"
            )
        if imports_kernel:
            for name in KERNEL_OWNED:
                if re.search(rf"^\s*def {name}\(", text, re.M):
                    problems.append(
                        f"{rel}: defines kernel-owned method {name}() — that "
                        "machinery lives in repro/core/focused.py only"
                    )
    return problems


def main() -> int:
    """CLI entry point; prints violations and returns the exit status."""
    problems = check()
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"\n{len(problems)} kernel-boundary violation(s)", file=sys.stderr)
        return 1
    print("kernel boundary clean: lifecycle machinery only in repro/core/focused.py")
    return 0


if __name__ == "__main__":
    sys.exit(main())
