#!/usr/bin/env python
"""Queue vs shared-memory transport benchmark for sharded ingestion.

Feeds the landmark-AVG COUNT workload over the ZIPF stream through
:class:`repro.parallel.ShardedIngestor` at 1, 2 and 4 workers, once per
transport.  Two clocks per point:

* **feed** — coordinator-side ``ingest`` + ``flush``: the serialisation
  path the shm transport exists to shorten (pickling a chunk vs writing
  its columns straight into a shared slab);
* **total** — feed plus merge and query, the end-to-end wall time.

Transport counters (slots/chunks handed off, bytes moved, coordinator
stalls) ride along from the winning round, so backpressure is visible
next to the throughput it explains.  The acceptance criterion — shm
feeds >= 2x faster than queue at 4 workers — is only expected to hold
with >= 4 physical cores; on smaller machines ``meets_criterion`` is
``null`` and the honest numbers are recorded instead, ``cpu_count``
alongside.

Writes ``benchmarks/BENCH_shard_transport.json``.

Usage::

    PYTHONPATH=src python tools/bench_transport.py [--size N] [--rounds N]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import benchlib  # noqa: E402
from repro.core.exact import exact_series  # noqa: E402
from repro.core.query import CorrelatedQuery  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.parallel import TRANSPORTS, ShardedIngestor  # noqa: E402

REPO = Path(__file__).resolve().parents[1]
OUTPUT = REPO / "benchmarks" / "BENCH_shard_transport.json"

WORKER_COUNTS = (1, 2, 4)
METHOD = "piecemeal-uniform"
NUM_BUCKETS = 10
CHUNK_SIZE = 2048


def _run_once(
    transport: str, workers: int, records, query: CorrelatedQuery
) -> dict[str, object]:
    """One timed pass: feed clock, total clock, answer, transport counters."""
    with ShardedIngestor(
        query,
        METHOD,
        num_buckets=NUM_BUCKETS,
        shards=workers,
        transport=transport,
        chunk_size=CHUNK_SIZE,
    ) as ingestor:
        started = time.perf_counter()
        ingestor.ingest(records)
        ingestor.flush()
        feed_seconds = time.perf_counter() - started
        answer = ingestor.query()
        total_seconds = time.perf_counter() - started
        counters = {
            key.split(".", 1)[1]: value
            for key, value in ingestor.obs_state().items()
            if key.startswith("transport.")
        }
    return {
        "feed_seconds": feed_seconds,
        "total_seconds": total_seconds,
        "estimate": answer,
        "counters": counters,
    }


def run(size: int, rounds: int) -> dict:
    query = CorrelatedQuery(dependent="count", independent="avg")
    records = load_dataset("ZIPF", size=size)
    exact = exact_series(records, query)[-1]

    curves: dict[str, list[dict[str, object]]] = {name: [] for name in TRANSPORTS}
    for workers in WORKER_COUNTS:
        for transport in TRANSPORTS:
            best = None
            for _ in range(rounds):
                sample = _run_once(transport, workers, records, query)
                if best is None or sample["feed_seconds"] < best["feed_seconds"]:
                    best = sample
            point = {
                "workers": workers,
                "feed_seconds": best["feed_seconds"],
                "feed_tuples_per_second": len(records) / best["feed_seconds"],
                "total_seconds": best["total_seconds"],
                "total_tuples_per_second": len(records) / best["total_seconds"],
                "estimate": best["estimate"],
                "relative_error": abs(best["estimate"] - exact)
                / max(abs(exact), 1e-12),
                "counters": best["counters"],
            }
            curves[transport].append(point)

    def _at(transport: str, workers: int) -> dict[str, object]:
        return next(p for p in curves[transport] if p["workers"] == workers)

    shm_vs_queue_at_4 = (
        _at("shm", 4)["feed_tuples_per_second"]
        / _at("queue", 4)["feed_tuples_per_second"]
    )
    machine = benchlib.machine_info()
    cpu_count = machine["cpu_count"]
    return {
        "benchmark": "tools/bench_transport.py",
        "description": (
            "Coordinator-side feed throughput (ingest+flush) and end-to-end "
            f"wall time for queue vs shm transports over {size} ZIPF tuples "
            f"({METHOD}, m={NUM_BUCKETS}, chunk={CHUNK_SIZE}) at 1/2/4 "
            f"workers, best of {rounds} rounds."
        ),
        "command": "PYTHONPATH=src python tools/bench_transport.py",
        "acceptance_criterion": (
            "shm feed throughput >= 2x queue at 4 workers on a machine with "
            ">= 4 physical cores; on smaller machines the honest measured "
            "numbers are recorded instead"
        ),
        "machine": machine,
        "workload": {
            "query": "COUNT{y: x > AVG(x)} [landmark]",
            "dataset": "ZIPF",
            "tuples": len(records),
            "method": METHOD,
            "num_buckets": NUM_BUCKETS,
            "chunk_size": CHUNK_SIZE,
            "exact_answer": exact,
        },
        "transports": curves,
        "shm_vs_queue_at_4": shm_vs_queue_at_4,
        "meets_criterion": (shm_vs_queue_at_4 >= 2.0 if cpu_count >= 4 else None),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=50_000)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)

    report = run(args.size, args.rounds)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for transport, points in report["transports"].items():
        for point in points:
            print(
                f"{transport} @ {point['workers']} workers: feed "
                f"{point['feed_tuples_per_second']:,.0f} tuples/s, total "
                f"{point['total_tuples_per_second']:,.0f} tuples/s"
            )
    print(f"shm vs queue feed at 4 workers: {report['shm_vs_queue_at_4']:.2f}x")
    print(f"wrote {args.output}")
    if report["meets_criterion"] is False:
        print("FAIL: shm < 2x queue at 4 workers despite >= 4 cores", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
