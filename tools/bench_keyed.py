#!/usr/bin/env python
"""Gated keyed bank at scale: a zipf(1.1) stream over a million keys.

Drives a :class:`repro.keyed.GatedKeyedBank` with a heavy-tailed keyed
workload — the per-customer fraud-screening shape the paper motivates —
and records three things a reviewer should be able to check in one file:

* **throughput** under a configurable promoted-estimator byte budget
  (the admission sketch plus a bounded set of full estimators, however
  many distinct keys the stream carries);
* **soundness**: for a validation sample of distinct keys (plus every
  promoted key), the exact per-key record count must fall inside the
  bank's over/under-count bounds, and ``promoted_bytes`` must respect
  the budget — ``bound_violations`` and ``budget_ok`` are part of the
  report, not a side effect;
* **parity**: promoted keys with an exact replay history must answer
  float-for-float what a standalone estimator over the same records
  answers.

Writes ``benchmarks/BENCH_keyed_bank.json``.

Usage::

    PYTHONPATH=src python tools/bench_keyed.py            # full: 1e6 keys
    PYTHONPATH=src python tools/bench_keyed.py --smoke    # CI: 1e4 keys
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import benchlib  # noqa: E402
from repro.core.engine import build_estimator  # noqa: E402
from repro.core.query import CorrelatedQuery  # noqa: E402
from repro.datasets.zipf import zipf_keys, zipf_stream  # noqa: E402
from repro.keyed import GatedKeyedBank  # noqa: E402

REPO = Path(__file__).resolve().parents[1]
OUTPUT = REPO / "benchmarks" / "BENCH_keyed_bank.json"

METHOD = "piecemeal-uniform"
NUM_BUCKETS = 10
KEY_SKEW = 1.1
#: Distinct keys whose exact counts are checked against the bank's bounds
#: (every promoted key is checked on top of this sample).
VALIDATION_SAMPLE = 50_000
#: Exactly promoted keys re-run through a standalone estimator.
PARITY_SAMPLE = 5


def _build_bank(args: argparse.Namespace, query: CorrelatedQuery) -> GatedKeyedBank:
    return GatedKeyedBank(
        query,
        METHOD,
        num_buckets=NUM_BUCKETS,
        sketch_capacity=args.sketch_capacity,
        promote_threshold=args.promote_after,
        memory_budget=args.budget_mb * 1024 * 1024,
    )


def _validate_bounds(
    bank: GatedKeyedBank, truth: Counter, sample: list[int]
) -> dict[str, int]:
    """Check exact per-key counts against the bank's explicit bounds."""
    violations = 0
    checked = 0
    keys = set(sample)
    keys.update(bank.promoted_keys())
    for key in keys:
        hits = truth.get(key, 0)
        if bank.is_promoted(key):
            entry = bank._promoted[key]
            low, high = entry.hits, entry.hits + entry.missed
        else:
            low, high = bank._admission.hit_bounds(key)
        checked += 1
        if not low <= hits <= high:
            violations += 1
    return {"checked_keys": checked, "bound_violations": violations}


def _validate_parity(
    bank: GatedKeyedBank, keys: np.ndarray, records: list, query: CorrelatedQuery
) -> dict[str, object]:
    """Replay the hottest exactly-promoted keys through standalone twins."""
    exact = [
        key
        for key, _ in bank.top(50)
        if bank.is_promoted(key) and bank.estimate_interval(key).exact_history
    ][:PARITY_SAMPLE]
    matches = 0
    for key in exact:
        solo = build_estimator(query, METHOD, num_buckets=NUM_BUCKETS)
        key_records = [r for k, r in zip(keys.tolist(), records) if k == key]
        solo.update_many(key_records, collect="none")
        if solo.estimate() == bank.estimate(key):
            matches += 1
    return {
        "parity_checked": len(exact),
        "parity_exact_matches": matches,
        "parity_ok": matches == len(exact),
    }


def run(args: argparse.Namespace) -> dict:
    query = CorrelatedQuery("count", "min", epsilon=9.0)
    records = zipf_stream(n=args.tuples, exponent=2.0, num_ranks=2000)
    keys = zipf_keys(args.tuples, args.keys, exponent=KEY_SKEW, seed=args.key_seed)
    key_list = keys.tolist()

    best = float("inf")
    bank = None
    for _ in range(args.rounds):
        candidate = _build_bank(args, query)
        update = candidate.update
        started = time.perf_counter()
        for key, record in zip(key_list, records):
            update(key, record)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            bank = candidate

    truth = Counter(key_list)
    rng = np.random.default_rng(args.key_seed)
    sample_size = min(VALIDATION_SAMPLE, len(truth))
    sample = rng.choice(list(truth), size=sample_size, replace=False).tolist()
    validation = _validate_bounds(bank, truth, sample)
    validation.update(_validate_parity(bank, keys, records, query))

    state = bank.obs_state()
    budget = args.budget_mb * 1024 * 1024
    report = {
        "benchmark": "tools/bench_keyed.py",
        "description": (
            f"GatedKeyedBank over {args.tuples:,} tuples spread across "
            f"{args.keys:,} distinct zipf({KEY_SKEW:g}) keys "
            f"({query.describe()}, {METHOD}, m={NUM_BUCKETS}): Space-Saving "
            f"admission ({args.sketch_capacity} slots, promote after "
            f"{args.promote_after} guaranteed hits) in front of a "
            f"{args.budget_mb} MiB promoted-estimator budget.  Exact per-key "
            "counts are validated against the bank's over/under-count bounds "
            "and exactly promoted keys against standalone estimators."
        ),
        "command": (
            "PYTHONPATH=src python tools/bench_keyed.py "
            f"--keys {args.keys} --tuples {args.tuples} "
            f"--sketch-capacity {args.sketch_capacity} "
            f"--promote-after {args.promote_after} --budget-mb {args.budget_mb} "
            f"--rounds {args.rounds}"
        ),
        "acceptance_criterion": (
            "zero bound violations across the validation sample, exact "
            "promoted keys float-for-float equal to standalone estimators, "
            "promoted_bytes within the configured budget"
        ),
        "machine": benchlib.machine_info(),
        "workload": {
            "query": query.describe(),
            "method": METHOD,
            "num_buckets": NUM_BUCKETS,
            "tuples": args.tuples,
            "distinct_keys": args.keys,
            "key_skew": KEY_SKEW,
            "sketch_capacity": args.sketch_capacity,
            "promote_threshold": args.promote_after,
            "memory_budget_bytes": budget,
        },
        "distinct_keys": args.keys,
        "elapsed_seconds": round(best, 4),
        "tuples_per_second": round(args.tuples / best),
        "bank": {
            "tracked_keys": state["keys"],
            "promoted": state["promoted"],
            "promoted_bytes": state["promoted_bytes"],
            "promotions": state["promotions"],
            "demotions": state["demotions"],
            "deferred_promotions": state["deferred_promotions"],
            "sketch_replacements": state["sketch.replacements"],
            "sketch_ceiling": state["sketch.ceiling"],
        },
        "validation": validation,
        "budget_ok": state["promoted_bytes"] <= budget,
        "sound": (
            validation["bound_violations"] == 0
            and validation["parity_ok"]
            and state["promoted_bytes"] <= budget
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keys", type=int, default=1_000_000)
    parser.add_argument("--tuples", type=int, default=2_000_000)
    parser.add_argument("--sketch-capacity", type=int, default=4096)
    parser.add_argument("--promote-after", type=int, default=64)
    parser.add_argument("--budget-mb", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=1)
    parser.add_argument("--key-seed", type=int, default=7)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 1e4 distinct keys over 1e5 tuples, no file write "
        "unless --output is given explicitly",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        args.keys = 10_000
        args.tuples = 100_000
        args.sketch_capacity = 1024
        args.promote_after = 32
        args.budget_mb = 16

    report = run(args)
    output = args.output
    if output is None and not args.smoke:
        output = OUTPUT
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")
    print(
        f"{report['tuples_per_second']:,} tuples/s over {args.keys:,} keys; "
        f"promoted {int(report['bank']['promoted'])} "
        f"({int(report['bank']['promoted_bytes']):,} bytes / "
        f"{report['workload']['memory_budget_bytes']:,} budget); "
        f"bounds: {report['validation']['bound_violations']} violations in "
        f"{report['validation']['checked_keys']:,} keys; "
        f"parity {report['validation']['parity_exact_matches']}/"
        f"{report['validation']['parity_checked']}"
    )
    return 0 if report["sound"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
