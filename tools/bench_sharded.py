#!/usr/bin/env python
"""Scaling benchmark for sharded multi-process ingestion.

Replays the landmark-AVG COUNT workload over the ZIPF stream through
:class:`repro.parallel.ShardedIngestor` at 1, 2, 4 and 8 workers and
compares wall-clock throughput (ingest + merge + query) against the
single-process ``update_many`` baseline.  Accuracy is reported alongside
speed: the merged estimate, the exact answer and the coordinator's
merge bound for every point on the curve.

Speedup is a property of the machine as much as the code — the report
records ``cpu_count`` and the start method, and the acceptance criterion
(>= 3x at 4 workers) is only expected to hold when at least 4 physical
cores are available.  On smaller machines the curve documents the
honest (flat or negative) scaling instead.

Writes ``benchmarks/BENCH_sharded_ingestion.json``.

Usage::

    PYTHONPATH=src python tools/bench_sharded.py [--size N] [--rounds N]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import benchlib  # noqa: E402
from repro.core.engine import build_estimator  # noqa: E402
from repro.core.exact import exact_series  # noqa: E402
from repro.core.query import CorrelatedQuery  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.parallel import ShardedIngestor  # noqa: E402

REPO = Path(__file__).resolve().parents[1]
OUTPUT = REPO / "benchmarks" / "BENCH_sharded_ingestion.json"

WORKER_COUNTS = (1, 2, 4, 8)
METHOD = "piecemeal-uniform"
NUM_BUCKETS = 10


def run(size: int, rounds: int, partition: str) -> dict:
    query = CorrelatedQuery(dependent="count", independent="avg")
    records = load_dataset("ZIPF", size=size)
    exact = exact_series(records, query)[-1]

    def baseline() -> float:
        estimator = build_estimator(query, METHOD, num_buckets=NUM_BUCKETS)
        estimator.update_many(records)
        return estimator.estimate()

    base_elapsed, base_estimate = benchlib.best_of(rounds, baseline)
    base_tps = len(records) / base_elapsed

    curve = []
    for workers in WORKER_COUNTS:

        def sharded() -> tuple[float, float | None]:
            with ShardedIngestor(
                query,
                METHOD,
                num_buckets=NUM_BUCKETS,
                shards=workers,
                partition=partition,
                chunk_size=2048,
            ) as ingestor:
                ingestor.ingest(records)
                answer = ingestor.query()
                return answer, ingestor.merge_error_bound()

        elapsed, (answer, bound) = benchlib.best_of(rounds, sharded)
        tps = len(records) / elapsed
        curve.append(
            {
                "workers": workers,
                "seconds": elapsed,
                "tuples_per_second": tps,
                "speedup_vs_baseline": tps / base_tps,
                "estimate": answer,
                "relative_error": abs(answer - exact) / max(abs(exact), 1e-12),
                "merge_bound": bound,
            }
        )

    at4 = next(p for p in curve if p["workers"] == 4)
    machine = benchlib.machine_info()
    cpu_count = machine["cpu_count"]
    return {
        "benchmark": "tools/bench_sharded.py",
        "description": (
            "ShardedIngestor scaling curve on the landmark-AVG COUNT query "
            f"over {size} ZIPF tuples ({METHOD}, m={NUM_BUCKETS}, "
            f"{partition} partitioning): 1/2/4/8 worker processes vs the "
            "single-process update_many baseline, best of "
            f"{rounds} rounds."
        ),
        "command": "PYTHONPATH=src python tools/bench_sharded.py",
        "acceptance_criterion": (
            ">= 3x baseline throughput at 4 workers on a machine with >= 4 "
            "physical cores; on smaller machines the honest measured curve "
            "is recorded instead"
        ),
        "machine": machine,
        "workload": {
            "query": "COUNT{y: x > AVG(x)} [landmark]",
            "dataset": "ZIPF",
            "tuples": len(records),
            "method": METHOD,
            "num_buckets": NUM_BUCKETS,
            "partition": partition,
            "exact_answer": exact,
        },
        "baseline": {
            "seconds": base_elapsed,
            "tuples_per_second": base_tps,
            "estimate": base_estimate,
            "relative_error": abs(base_estimate - exact) / max(abs(exact), 1e-12),
        },
        "curve": curve,
        "speedup_at_4": at4["speedup_vs_baseline"],
        "meets_criterion": (
            at4["speedup_vs_baseline"] >= 3.0 if cpu_count >= 4 else None
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=50_000)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--partition", default="round-robin")
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)

    report = run(args.size, args.rounds, args.partition)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"baseline: {report['baseline']['tuples_per_second']:,.0f} tuples/s")
    for point in report["curve"]:
        print(
            f"{point['workers']} workers: {point['tuples_per_second']:,.0f} tuples/s "
            f"({point['speedup_vs_baseline']:.2f}x), rel err "
            f"{point['relative_error']:.4f}"
        )
    print(f"wrote {args.output}")
    if report["meets_criterion"] is False:
        print("FAIL: < 3x at 4 workers despite >= 4 cores", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
