#!/usr/bin/env python
"""Measure what the flight recorder costs when it is off — and when it is on.

Three variants of the same streaming workload, timed in-process:

* ``floor``    — ``FocusedEstimatorBase.update`` temporarily swapped for the
                 pre-instrumentation body (no ``tracer.enabled`` branch at
                 all).  This is the old per-tuple hot path, reconstructed.
* ``disabled`` — the shipped code with no sink and no tracer (``NULL_TRACER``
                 guard taken every tuple).  The acceptance bar: at most 5%
                 slower than ``floor``.
* ``enabled``  — a ``RecordingSink`` + ``Tracer`` attached, so every tuple
                 opens a ``kernel.answer`` span and every lifecycle edge
                 exports.  This records the real price of turning tracing on.

The floor is installed by patching the base-class method, not by splicing a
dynamic subclass onto the instance: reassigning ``__class__`` un-shares the
instance's shared-key dict and deoptimizes every attribute load, which makes
the floor look ~20% slower than it ever was.  Each patch toggle invalidates
CPython's per-type caches, so every block re-warms with one untimed round
before measuring; blocks interleave so clock drift lands evenly.

Writes ``benchmarks/BENCH_obs_overhead.json``.  Exits non-zero if the
disabled-path regression exceeds the budget, so CI can gate on it.

Usage::

    PYTHONPATH=src python tools/bench_obs_overhead.py [--rounds N] [--size N]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import benchlib  # noqa: E402
from repro.core.engine import build_estimator  # noqa: E402
from repro.core.focused import FocusedEstimatorBase  # noqa: E402
from repro.core.query import CorrelatedQuery  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.obs.sink import RecordingSink  # noqa: E402
from repro.obs.trace import Tracer  # noqa: E402
from repro.streams.model import ensure_finite  # noqa: E402

REPO = Path(__file__).resolve().parents[1]
OUTPUT = REPO / "benchmarks" / "BENCH_obs_overhead.json"

#: Disabled-path budget: the NULL_TRACER guard may cost at most this much.
BUDGET = 1.05

WORKLOADS = {
    "landmark-min": CorrelatedQuery("count", "min", epsilon=99.0),
    "sliding-min": CorrelatedQuery("count", "min", epsilon=99.0, window=500),
}

SHIPPED_UPDATE = FocusedEstimatorBase.update


def _floor_update(self, record):
    """``FocusedEstimatorBase.update`` as it was before span tracing landed."""
    ensure_finite(record)
    carrier = self._ingest(record)
    if self._buffer is not None:
        self._warmup_step(record)
    else:
        self._step(record, carrier)
    return self.estimate()


def _build(query, records, variant: str):
    kwargs: dict[str, object] = {"num_buckets": 10, "stream": records}
    if variant == "enabled":
        sink = RecordingSink()
        kwargs["sink"] = sink
        kwargs["tracer"] = Tracer(sink)
    return build_estimator(query, "piecemeal-uniform", **kwargs)


def _one_round(query, records, variant: str) -> float:
    def workload():
        estimator = _build(query, records, variant)
        update = estimator.update

        def run():
            for record in records:
                update(record)

        return run

    return benchlib.one_round(workload)


def _block(query, records, variant: str, rounds: int) -> list[float]:
    if variant == "floor":
        FocusedEstimatorBase.update = _floor_update
    try:
        _one_round(query, records, variant)  # re-specialize after the toggle
        return [_one_round(query, records, variant) for _ in range(rounds)]
    finally:
        FocusedEstimatorBase.update = SHIPPED_UPDATE


def _time_workload(
    query, records, variants: tuple[str, ...], rounds: int
) -> dict[str, dict[str, float]]:
    blocks = {
        variant: (lambda k, v=variant: _block(query, records, v, k))
        for variant in variants
    }
    samples = benchlib.time_variants(blocks, rounds)
    return {
        variant: benchlib.summarize(times, len(records))
        for variant, times in samples.items()
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--size", type=int, default=2_000)
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)

    records = load_dataset("USAGE", size=args.size)
    report: dict[str, object] = {
        "benchmark": "tools/bench_obs_overhead.py",
        "description": (
            "Per-tuple cost of the observability layer on the focused-histogram "
            "hot path: pre-instrumentation floor vs. shipped code with tracing "
            "disabled (the NULL_TRACER guard) vs. fully enabled (RecordingSink "
            "+ Tracer, kernel.answer span per tuple)."
        ),
        "command": f"PYTHONPATH=src python tools/bench_obs_overhead.py "
        f"--rounds {args.rounds} --size {args.size}",
        "acceptance_criterion": (
            f"disabled/floor median ratio <= {BUDGET} on every workload"
        ),
        "workloads": {},
    }

    ok = True
    for name, query in WORKLOADS.items():
        timings = _time_workload(
            query, records, ("floor", "disabled", "enabled"), args.rounds
        )
        # Medians over interleaved blocks: robust to drift in either direction
        # where best-of-round still jitters by more than the effect size.
        disabled_ratio = timings["disabled"]["median"] / timings["floor"]["median"]
        enabled_ratio = timings["enabled"]["median"] / timings["floor"]["median"]
        within = disabled_ratio <= BUDGET
        ok = ok and within
        report["workloads"][name] = {  # type: ignore[index]
            "query": query.describe(),
            "tuples_per_round": len(records),
            "results_seconds": timings,
            "overhead": {
                "disabled_over_floor": round(disabled_ratio, 4),
                "enabled_over_floor": round(enabled_ratio, 4),
                "within_budget": within,
            },
        }
        print(
            f"{name:>14}: disabled {disabled_ratio:.3f}x floor "
            f"(budget {BUDGET}x, {'ok' if within else 'FAIL'}), "
            f"enabled {enabled_ratio:.3f}x floor"
        )

    report["within_budget"] = ok
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
