"""Shared measurement harness for the ``tools/bench_*.py`` scripts.

Every benchmark in this repo follows the same discipline:

* a round is one full pass over the workload, timed with the garbage
  collector frozen (one ``gc.collect()`` before the clock starts, so no
  round pays for another round's garbage);
* setup (building estimators, loading data) runs *outside* the timed
  region;
* variants are timed in **interleaved blocks** — a few rounds of A, a
  few of B, repeat — so clock drift and thermal throttling land evenly
  on every variant instead of biasing whichever ran last;
* the first block per variant is warmup (CPython re-specialises after
  any monkeypatching, caches fill) and is discarded;
* summaries report min/median/mean/stddev over the kept rounds, and
  machine facts (``cpu_count`` above all) ride along so a single-core
  CI runner's numbers are never mistaken for a workstation's.

The helpers here encode that discipline once; the ``bench_*`` scripts
supply only their workloads and acceptance criteria.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import statistics
import sys
import time
from collections.abc import Callable, Mapping

#: Timed rounds per contiguous block of one variant.
BLOCK = 5


def one_round(workload: Callable[[], Callable[[], None]]) -> float:
    """Time a single round: ``workload()`` builds, the returned thunk runs.

    Setup work inside ``workload`` is untimed; only the returned thunk
    is clocked, with garbage collection disabled for the duration.
    """
    run = workload()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        run()
        return time.perf_counter() - start
    finally:
        gc.enable()


def time_variants(
    blocks: Mapping[str, Callable[[int], list[float]]],
    rounds: int,
    block: int = BLOCK,
) -> dict[str, list[float]]:
    """Collect >= ``rounds`` samples per variant in interleaved blocks.

    ``blocks[name](k)`` must run ``k`` timed rounds of that variant and
    return their durations; any per-variant patching/unpatching belongs
    inside it.  The first block of every variant (one round) is warmup
    and discarded.
    """
    samples: dict[str, list[float]] = {name: [] for name in blocks}
    for fn in blocks.values():  # first full block per variant is warmup
        fn(1)
    while min(len(s) for s in samples.values()) < rounds:
        for name, fn in blocks.items():
            samples[name].extend(fn(block))
    return samples


def summarize(times: list[float], tuples: int) -> dict[str, float]:
    """The standard per-variant stats block of a ``BENCH_*.json`` report."""
    return {
        "min": min(times),
        "median": statistics.median(times),
        "mean": statistics.fmean(times),
        "stddev": statistics.stdev(times) if len(times) > 1 else 0.0,
        "rounds": len(times),
        "tuples_per_second": tuples / statistics.median(times),
    }


def best_of(rounds: int, fn: Callable[[], object]) -> tuple[float, object]:
    """(best elapsed seconds, result from the best round).

    For workloads too heavy to interleave (multi-process scaling runs):
    best-of-N suppresses scheduler noise without the block machinery.
    """
    best = float("inf")
    best_result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            best_result = result
    return best, best_result


def machine_info() -> dict[str, object]:
    """The machine facts every throughput claim must carry."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "start_method": multiprocessing.get_start_method(),
        "platform": sys.platform,
    }
