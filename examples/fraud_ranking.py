"""Per-customer fraud screening with a keyed estimator bank.

The paper's opening scenario: "maintain a variety of statistical summary
information about a large number of customers in an online fashion".  This
example keeps one constant-space correlated-aggregate estimator *per
customer* and ranks customers by it as the call stream flows by.

The screening signal is the paper-style query (written in its notation and
parsed by :func:`repro.parse_query`)::

    COUNT{y: x >= MAX(x)/(1+0.25)}  OVER SLIDING(200)

per customer — how many of the customer's recent calls are within 20% of
their own longest recent call.  A burst of uniformly-long calls (classic
toll-fraud dialing) pushes this count up, while normal traffic (mixed
durations) keeps it low.

Usage::

    python examples/fraud_ranking.py
"""

from __future__ import annotations

import numpy as np

from repro import KeyedEstimatorBank, parse_query
from repro.streams.model import Record

CUSTOMERS = 40
CALLS = 40_000
QUERY_TEXT = "COUNT{y: x >= MAX(x)/(1+0.25)} OVER SLIDING(200)"
FRAUDSTERS = {"cust-03", "cust-17"}


def synth_call(rng: np.random.Generator, customer: str) -> Record:
    """One call-duration record; fraudsters dial long, uniform calls."""
    if customer in FRAUDSTERS and rng.random() < 0.6:
        duration = rng.uniform(28.0, 30.0)  # scripted long calls
    else:
        # Normal traffic, capped at the 20-minute auto-disconnect.
        duration = min(float(rng.lognormal(mean=1.2, sigma=1.0)), 20.0)
    return Record(x=duration, y=1.0)


def main() -> None:
    rng = np.random.default_rng(42)
    query = parse_query(QUERY_TEXT)
    bank = KeyedEstimatorBank(query, method="piecemeal-uniform", num_buckets=8)

    customers = [f"cust-{i:02d}" for i in range(CUSTOMERS)]
    print(f"query per customer: {query.describe()}")
    print(f"streaming {CALLS} calls across {CUSTOMERS} customers...\n")

    for _ in range(CALLS):
        customer = customers[int(rng.integers(0, CUSTOMERS))]
        bank.update(customer, synth_call(rng, customer))

    print(f"{'rank':>4}  {'customer':>9}  {'near-own-max calls':>18}  flag")
    print("-" * 46)
    for rank, (customer, score) in enumerate(bank.top(8), start=1):
        flag = "FRAUD?" if customer in FRAUDSTERS else ""
        print(f"{rank:>4}  {customer:>9}  {score:>18.1f}  {flag}")

    flagged = {customer for customer, _ in bank.top(2)}
    print(
        f"\ntop-2 by screening score: {sorted(flagged)} "
        f"(planted fraudsters: {sorted(FRAUDSTERS)})"
    )
    print(f"state: {len(bank)} estimators x 8 buckets, no per-call storage")


if __name__ == "__main__":
    main()
