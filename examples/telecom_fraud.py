"""Telecom monitoring: the paper's Section 2 examples on a CallDetail stream.

Reproduces the three stream aggregates the paper motivates with, over a
synthetic CallDetail(origin, dialed, time, duration, isIntl) stream:

* Example 1 (level 0): number of international calls in the recent window
  that took longer than 10 minutes — exactly computable with the level-0
  stream operator.
* Example 2 (level 1, landmark, AVG): number of international calls longer
  than the average call duration — approximated with a focused histogram.
* Example 3 (level 1, sliding, MAX): number of calls within 10% of the
  longest recent call — approximated with the sliding extrema estimator.

Usage::

    python examples/telecom_fraud.py
"""

from __future__ import annotations

from repro.core.engine import build_estimator
from repro.core.exact import ExactOracle
from repro.core.query import CorrelatedQuery
from repro.datasets.calldetail import call_detail_stream
from repro.streams.model import Record
from repro.streams.operators import StreamAggregateOperator
from repro.streams.scopes import SlidingWindowScope

WINDOW = 2_000  # "recent" = the last 2000 calls
CHECKPOINTS = (2_000, 5_000, 10_000, 15_000, 20_000)


def example_1_long_intl_calls(calls) -> None:
    """Level 0: COUNT of recent international calls longer than 10 minutes."""
    print("Example 1 - recent international calls over 10 minutes (exact, level 0)")
    operator = StreamAggregateOperator(
        "count",
        SlidingWindowScope(WINDOW),
        predicate=lambda r: r.y > 10.0,  # y carries the duration here
        window=WINDOW,
    )
    outputs = [operator.update(Record(x=0.0, y=c.duration if c.is_intl else -1.0)) for c in calls]
    for step in CHECKPOINTS:
        print(f"  after {step:>6} calls: {outputs[step - 1]:>6.0f}")
    print()


def example_2_longer_than_average(calls) -> None:
    """Level 1, landmark: intl calls longer than the average duration."""
    print("Example 2 - intl calls longer than the average duration (landmark, approx)")
    # x = duration drives the threshold; y is a 0/1 international marker, so
    # a SUM-dependent aggregate counts exactly the qualifying intl calls.
    query = CorrelatedQuery(dependent="sum", independent="avg")
    estimator = build_estimator(query, "piecemeal-uniform", num_buckets=10)
    oracle = ExactOracle(query, (c.duration for c in calls))

    estimates, exact = [], []
    for call in calls:
        record = Record(x=call.duration, y=1.0 if call.is_intl else 0.0)
        estimates.append(estimator.update(record))
        exact.append(oracle.update(record))
    for step in CHECKPOINTS:
        est, ref = estimates[step - 1], exact[step - 1]
        print(f"  after {step:>6} calls: estimate {est:>8.1f}   exact {ref:>8.1f}")
    print()


def example_3_near_longest(calls) -> None:
    """Level 1, sliding: calls within 10% of the longest recent call."""
    print("Example 3 - calls within 10% of the longest recent call (sliding, approx)")
    # "within 10% of MAX" is MAX(x)/(1+eps) <= x with 1/(1+eps) = 0.9.
    epsilon = 1.0 / 0.9 - 1.0
    query = CorrelatedQuery(
        dependent="count", independent="max", epsilon=epsilon, window=WINDOW
    )
    estimator = build_estimator(query, "piecemeal-uniform", num_buckets=10)
    oracle = ExactOracle(query, (c.duration for c in calls))

    estimates, exact = [], []
    for call in calls:
        record = Record(x=call.duration, y=1.0)
        estimates.append(estimator.update(record))
        exact.append(oracle.update(record))
    for step in CHECKPOINTS:
        est, ref = estimates[step - 1], exact[step - 1]
        print(f"  after {step:>6} calls: estimate {est:>8.1f}   exact {ref:>8.1f}")
    print()


def main() -> None:
    calls = call_detail_stream(n=20_000, seed=2001)
    intl = sum(1 for c in calls if c.is_intl)
    print(f"CallDetail stream: {len(calls)} calls, {intl} international\n")
    example_1_long_intl_calls(calls)
    example_2_longer_than_average(calls)
    example_3_near_longest(calls)


if __name__ == "__main__":
    main()
