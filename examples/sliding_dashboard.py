"""Sliding-window dashboard: watch a focused histogram adapt in real time.

Streams the ZIPF data set through the sliding-window AVG estimator and
periodically renders a small text dashboard: the window mean, the focus
interval the estimator keeps its fine buckets on, a bucket sparkline, and
the estimated vs exact count of above-average values.

This example is about *observability* — it shows the mechanism the paper
describes (the region of interest moving, shrinking and expanding as the
stream evolves) rather than just the final numbers.

Usage::

    python examples/sliding_dashboard.py
"""

from __future__ import annotations

from repro.core.exact import ExactOracle
from repro.core.query import CorrelatedQuery
from repro.core.sliding_avg import SlidingAvgEstimator
from repro.datasets.zipf import zipf_stream

WINDOW = 500
REFRESH = 800  # render every this many tuples

SPARK_LEVELS = " .:-=+*#%@"


def sparkline(counts: list[float]) -> str:
    """Map bucket counts to a density string (one char per bucket)."""
    peak = max(max(counts), 1e-9)
    chars = []
    for count in counts:
        level = int(max(count, 0.0) / peak * (len(SPARK_LEVELS) - 1))
        chars.append(SPARK_LEVELS[level])
    return "".join(chars)


def main() -> None:
    records = zipf_stream(n=8_000)
    query = CorrelatedQuery(dependent="count", independent="avg", window=WINDOW)
    estimator = SlidingAvgEstimator(query, num_buckets=12)
    oracle = ExactOracle(query, (r.x for r in records))

    print(f"query: {query.describe()}   (ZIPF stream, {len(records)} tuples)\n")

    for step, record in enumerate(records, start=1):
        estimate = estimator.update(record)
        exact = oracle.update(record)
        if step % REFRESH != 0 or estimator.histogram is None:
            continue
        lo, hi = estimator.focus_interval
        buckets = estimator.histogram.counts
        print(f"step {step:>6}")
        print(f"  window mean     : {estimator.mean:14.2f}")
        print(f"  focus interval  : [{lo:12.3g}, {hi:12.3g}]")
        print(f"  focus buckets   : |{sparkline(buckets)}|")
        print(f"  above-mean count: estimate {estimate:8.1f}   exact {exact:8.1f}\n")


if __name__ == "__main__":
    main()
