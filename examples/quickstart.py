"""Quickstart: estimate a correlated aggregate over a data stream.

Runs the paper's flagship query

    COUNT { y :  x <= (1 + eps) * MIN(x) }        (eps = 99)

over the synthetic USAGE stream with the recommended method
(piecemeal-uniform focused histogram, 10 buckets), and compares the
single-pass estimate against the exact answer at a few checkpoints.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CorrelatedQuery, build_estimator, exact_series
from repro.datasets import usage_stream


def main() -> None:
    records = usage_stream(n=10_000)

    query = CorrelatedQuery(dependent="count", independent="min", epsilon=99.0)
    print(f"query: {query.describe()}")
    print(f"stream: USAGE, {len(records)} tuples\n")

    estimator = build_estimator(query, "piecemeal-uniform", num_buckets=10)
    estimates = [estimator.update(record) for record in records]

    # The exact oracle replays the stream with unbounded state — the
    # multi-pass answer the paper measures against.
    exact = exact_series(records, query)

    print(f"{'step':>8}  {'estimate':>12}  {'exact':>12}  {'rel.err':>8}")
    for step in (100, 1_000, 2_500, 5_000, 7_500, 10_000):
        est, ref = estimates[step - 1], exact[step - 1]
        rel = abs(est - ref) / max(ref, 1.0)
        print(f"{step:>8}  {est:>12.1f}  {ref:>12.1f}  {rel:>8.2%}")

    rmse = (sum((e - x) ** 2 for e, x in zip(estimates, exact)) / len(exact)) ** 0.5
    print(f"\nRMSE over the whole stream: {rmse:.3f}")
    print("state used: 10 histogram buckets (vs. the oracle's full buffer)")


if __name__ == "__main__":
    main()
