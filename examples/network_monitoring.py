"""Network monitoring: correlated aggregates over bursty SNMP-style traffic.

The paper's second motivating application: routers are polled periodically
and an operator wants to know, per interface, *"how often is the total
outbound traffic within 50% of the maximum outbound traffic?"* — a
correlated aggregate with MAX as the independent aggregate:

    COUNT { y :  x > 0.5 * MAX(x) }

Traffic volumes are modelled with the binomial multifractal generator (the
paper cites Feldmann et al.: WAN traffic is well described by multifractal
cascades).  The monitor runs one sliding-window estimator per interface in
constant space per interface, and flags interfaces that spend a large share
of the window near their peak (sustained saturation — a congestion signal).

Usage::

    python examples/network_monitoring.py
"""

from __future__ import annotations

from repro.core.engine import build_estimator
from repro.core.exact import ExactOracle
from repro.core.query import CorrelatedQuery
from repro.datasets.multifractal import multifractal_stream
from repro.streams.model import Record

WINDOW = 500  # polls per window (e.g. ~8 hours of 1-minute polls)
NUM_INTERFACES = 4
POLLS = 4_000

#: "within 50% of the maximum": x >= MAX/2, i.e. MAX/(1+eps) with eps = 1.
EPSILON = 1.0
SATURATION_ALERT = 0.35  # alert when >35% of the window is near peak


def make_interface_traffic(interface: int) -> list[Record]:
    """Bursty per-interface outbound byte counts (multifractal volumes)."""
    records = multifractal_stream(
        n=POLLS, seed=100 + interface, bias=0.75 + 0.04 * interface, domain=1.0e9
    )
    # Shift away from zero: an idle interface still emits keepalive bytes.
    return [Record(x=r.x + 1.0e3, y=1.0) for r in records]


def main() -> None:
    query = CorrelatedQuery(
        dependent="count", independent="max", epsilon=EPSILON, window=WINDOW
    )
    print(f"query per interface: {query.describe()}")
    print(f"monitoring {NUM_INTERFACES} interfaces, {POLLS} polls each\n")

    header = f"{'interface':>9}  {'near-peak (est)':>15}  {'near-peak (exact)':>17}  {'share':>6}  alert"
    print(header)
    print("-" * len(header))

    for interface in range(NUM_INTERFACES):
        traffic = make_interface_traffic(interface)
        estimator = build_estimator(query, "piecemeal-uniform", num_buckets=10)
        oracle = ExactOracle(query, (r.x for r in traffic))

        estimate = exact = 0.0
        for record in traffic:
            estimate = estimator.update(record)
            exact = oracle.update(record)

        share = estimate / WINDOW
        alert = "SATURATED" if share > SATURATION_ALERT else "-"
        print(
            f"{interface:>9}  {estimate:>15.1f}  {exact:>17.1f}  {share:>6.1%}  {alert}"
        )

    print(
        "\nEach estimator holds 10 buckets + O(intervals) trackers per "
        "interface;\nthe exact column is the unbounded-state oracle, shown "
        "for validation."
    )


if __name__ == "__main__":
    main()
