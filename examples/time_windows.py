"""Time-scoped correlated aggregates, the way the paper's examples ask.

The paper's Example 3: "the number of international calls whose duration
was within 10% of the call with the longest duration **with respect to the
last two weeks**" — a duration-scoped window, not a tuple-count one.  This
example runs that query (scaled to "the last hour" of a synthetic stream)
with :class:`repro.core.TimeSlidingEstimator`, which expires tuples by
timestamp: a bursty minute adds hundreds, a quiet one none.

Usage::

    python examples/time_windows.py
"""

from __future__ import annotations

import math

from repro.core import TimeSlidingEstimator
from repro.core.query import CorrelatedQuery
from repro.datasets.calldetail import call_detail_stream
from repro.streams.model import Record

WINDOW_SECONDS = 3600.0  # "the last hour"
REPORT_EVERY = 2500


def exact_answer(events, now, query):
    """Reference answer from the raw events (unbounded state)."""
    live = [r for t, r in events if t > now - WINDOW_SECONDS]
    longest = max(r.x for r in live)
    qualifying = [r for r in live if query.qualifies(r.x, longest)]
    return float(len(qualifying))


def main() -> None:
    # "within 10% of the longest call": x >= MAX(x) * 0.9.
    epsilon = 1.0 / 0.9 - 1.0
    query = CorrelatedQuery(dependent="count", independent="max", epsilon=epsilon)
    estimator = TimeSlidingEstimator(query, duration=WINDOW_SECONDS, num_buckets=10)

    calls = call_detail_stream(n=25_000, seed=7)
    print(f"query: {query.describe().replace('[landmark]', '[last hour]')}")
    print(f"stream: {len(calls)} calls over ~{calls[-1].time / 3600:.1f} hours\n")

    events = []
    header = f"{'call #':>7}  {'t (h)':>6}  {'in window':>9}  {'estimate':>9}  {'exact':>7}"
    print(header)
    print("-" * len(header))
    for i, call in enumerate(calls, start=1):
        record = Record(x=call.duration, y=1.0)
        events.append((call.time, record))
        estimate = estimator.update(call.time, record)
        if i % REPORT_EVERY == 0:
            truth = exact_answer(events, call.time, query)
            print(
                f"{i:>7}  {call.time / 3600:>6.2f}  {estimator.live_count:>9}"
                f"  {estimate:>9.1f}  {truth:>7.1f}"
            )

    peak = max(n for n in [estimator.live_count])
    slices = math.ceil(WINDOW_SECONDS / estimator._min_tracker.slice_length)  # noqa: SLF001
    print(
        f"\nsummary state: 10 buckets + {slices} time slices per tracker "
        f"(vs {peak}+ raw calls in the window)"
    )


if __name__ == "__main__":
    main()
